#pragma once
// Minimal JSON support for the stats subsystem: a canonical number formatter
// (shortest round-trip decimal, so exports are byte-deterministic AND
// readable), and a small recursive-descent parser into an ordered DOM used by
// `tools/statsview` and the invariant tests.  No external dependencies.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stats::json {

/// Shortest decimal representation of `v` that strtod round-trips to the same
/// bits (tries %.15g, %.16g, %.17g).  NaN/Inf are not valid JSON; they are
/// emitted as 0 (the stats pipeline never produces them).
std::string format_double(double v);

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& s);

// ---- DOM + parser ------------------------------------------------------------

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< preserves key order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  /// `find(key)->number` with a default.
  double num(const std::string& key, double fallback = 0) const;
  /// `find(key)->string` with a default.
  std::string str(const std::string& key, const std::string& fallback = "") const;
};

/// Parses `text` into `out`.  On failure returns false and, when `err` is
/// given, fills it with a message including the byte offset.
bool parse(const std::string& text, Value& out, std::string* err = nullptr);

}  // namespace stats::json
