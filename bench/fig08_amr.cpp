// Fig 8: AMR3D.  Left: strong scaling with NoLB vs DistributedLB vs ideal.
// Right: in-memory checkpoint and restart times vs PE count.

#include "bench_common.hpp"
#include "ft/mem_checkpoint.hpp"
#include "miniapps/amr/amr.hpp"

namespace {

using namespace charm;

amr::Params bench_params() {
  amr::Params p;
  p.block = 6;
  p.min_depth = 2;   // 64 initial blocks
  p.max_depth = 4;   // refinement adds hundreds around the blob
  p.cell_cost = 120e-9;
  return p;
}

double time_per_step(int npes, bool distributed_lb) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  amr::Mesh mesh(rt, bench_params());
  if (distributed_lb) {
    rt.lb().use_distributed(true);
    rt.lb().set_period(4);
  }
  bool done = false;
  const int chunks = bench::cap_steps(4, 2), steps = bench::cap_steps(6, 2);
  rt.on_pe(0, [&] {
    mesh.run(chunks, steps, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  m.run();
  if (!done) std::printf("   WARNING: AMR run did not complete (P=%d)\n", npes);
  return m.max_pe_clock() / (chunks * steps);
}

std::pair<double, double> ckpt_restart_times(int npes) {
  sim::Machine m(bench::machine_config(npes));
  bench::attach_trace(m);
  Runtime rt(m);
  amr::Mesh mesh(rt, bench_params());
  ft::MemCheckpointer ckpt(rt);
  double t_ckpt = -1, t_restart = -1;
  rt.on_pe(0, [&] {
    mesh.run(2, 4, Callback::to_function([&](ReductionResult&&) {
      const double t0 = charm::now();
      ckpt.checkpoint(Callback::to_function([&, t0](ReductionResult&&) {
        t_ckpt = charm::now() - t0;
        const double t1 = charm::now();
        ckpt.fail_and_recover(npes / 2, Callback::to_function([&, t1](ReductionResult&&) {
          t_restart = charm::now() - t1;
          rt.exit();
        }));
      }));
    }));
  });
  m.run();
  return {t_ckpt, t_restart};
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Figure 8 (left)", "AMR3D strong scaling: NoLB vs DistributedLB vs ideal");
  bench::columns({"PEs", "NoLB_s/step", "DistLB_s/step", "ideal_s/step"});
  double base = -1;
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    const double nolb = time_per_step(p, false);
    const double dist = time_per_step(p, true);
    if (base < 0) base = dist * p;
    bench::row({static_cast<double>(p), nolb, dist, base / p});
  }
  bench::note("paper shape: DistributedLB beats NoLB (40% at scale); scaling tracks ideal with");
  bench::note("decaying parallel efficiency (paper: 46% at 128K PEs)");

  bench::header("Figure 8 (right)", "AMR3D in-memory checkpoint and restart time vs PEs");
  bench::columns({"PEs", "checkpoint_ms", "restart_ms"});
  for (int p : bench::pe_series({8, 16, 32, 64})) {
    auto [c, r] = ckpt_restart_times(p);
    bench::row({static_cast<double>(p), c * 1e3, r * 1e3});
  }
  bench::note("paper shape: both fall as PEs grow (checkpoint 394ms@2K -> 29ms@32K;");
  bench::note("restart 2.24s@2K -> 470ms@32K)");
  return bench::finish();
}
