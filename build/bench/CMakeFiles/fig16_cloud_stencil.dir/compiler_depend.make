# Empty compiler generated dependencies file for fig16_cloud_stencil.
# This may be replaced when dependencies are built.
