#pragma once
// Deterministic fault injection for the emulated machine.
//
// A FaultInjector owns a seeded schedule of PE-failure events.  The Machine
// event loop consults it before dispatching each event, so failures land
// *between* handler executions at exact virtual timestamps — never mid-entry.
// Three schedule modes:
//
//   * kFixed   — an explicit list of (time, victim) pairs; victim -1 means
//                "pick a live PE with the seeded RNG".
//   * kMtbf    — Poisson process: exponential inter-failure gaps with the
//                configured mean (MTBF), seeded victim selection.
//   * kNemesis — adversarial timing: failures can be armed by runtime phase
//                hooks (checkpoint begin, LB-step begin) so they strike
//                mid-protocol, and the victim is the *busiest* live PE
//                (longest ready queue, then most accumulated work).  An
//                optional MTBF stream runs underneath the hooks.
//
// On injection the Machine quarantines the victim: queued messages are
// dropped and in-flight messages addressed to it are disposed of per the
// configured policy (see DropPolicy).  Each failure appends a FaultRecord to
// a log; the log's canonical text form is byte-identical across runs with
// the same seed, which is what the resilience harness asserts.
//
// The injector is pure sim-layer machinery: recovery is the business of
// whoever registers the failure listener (ft::MemCheckpointer in practice).

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace sim {

class Machine;

enum class FaultMode : std::uint8_t { kOff, kFixed, kMtbf, kNemesis };

/// What happens to a message addressed to a failed PE (both the victim's
/// queued messages at injection time and later in-flight arrivals).
enum class DropPolicy : std::uint8_t {
  /// The message evaporates: its handler runs in a zero-cost quarantine
  /// context so upper-layer accounting (quiescence counting) still balances,
  /// but no virtual time is charged and no PE clock advances.
  kDrop,
  /// The message is re-delivered to the nearest live PE (victim+1, +2, ...).
  /// Upper layers still suppress application effects for the dead target;
  /// this models networks that reroute around a failed node.
  kRedirect,
};

struct FaultConfig {
  FaultMode mode = FaultMode::kOff;
  DropPolicy policy = DropPolicy::kDrop;
  /// kFixed: explicit (virtual time, victim PE) schedule; victim -1 = random.
  std::vector<std::pair<Time, int>> fixed;
  /// kMtbf / kNemesis: mean virtual seconds between failures (0 = hooks only).
  double mtbf = 0;
  std::uint64_t seed = 1;
  /// Total failures this injector may fire (schedule + armed hooks).
  int max_failures = 1;
  /// No failure fires before this virtual time (lets the application commit
  /// a first checkpoint so every run is recoverable).
  Time start_after = 0;
  /// Minimum gap between consecutive failures (recovery headroom).
  Time min_gap = 0;
  /// kNemesis: arm a failure when these runtime phases begin.
  bool strike_mid_checkpoint = false;
  bool strike_mid_lb = false;
  /// kNemesis: delay from phase begin to the armed failure.
  Time strike_delay = 1e-6;
};

struct FaultRecord {
  int ordinal = 0;              ///< 0-based injection index
  Time time = 0;                ///< exact virtual injection timestamp
  int pe = -1;                  ///< victim
  std::uint64_t dropped_ready = 0;       ///< victim's queued messages disposed
  std::uint64_t dropped_inflight = 0;    ///< later arrivals dropped while dead
  std::uint64_t redirected_inflight = 0; ///< later arrivals rerouted while dead
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig cfg) { configure(std::move(cfg)); }

  /// Installs a schedule and resets all derived state (log, RNG, arming).
  void configure(FaultConfig cfg);
  const FaultConfig& config() const { return cfg_; }

  /// Called synchronously at each injection, after the machine has
  /// quarantined the victim.  Runs outside any handler context.
  void set_listener(std::function<void(const FaultRecord&)> fn) {
    listener_ = std::move(fn);
  }

  /// One-shot: schedule a failure at absolute virtual time `t` (tests,
  /// adversarial drivers).  Overrides nothing; fires whichever of the armed
  /// and scheduled failures comes first.  Counts toward max_failures.
  void arm(Time t, int victim = -1);

  // ---- nemesis phase hooks (called by ft/lb when a protocol phase begins) --
  void notify_checkpoint_begin(Time now);
  void notify_lb_begin(Time now);

  // ---- machine interface ---------------------------------------------------
  /// True when a failure is scheduled and the budget is not exhausted.
  bool armed() const;
  /// Virtual time of the next failure (meaningless unless armed()).
  Time next_time() const;
  /// Deterministically selects the victim for the failure at next_time().
  /// Returns -1 when no live PE remains (the failure is then skipped).
  int choose_victim(const Machine& m);
  /// Consumes the pending failure without firing it (no live victim).
  void skip();
  /// Commits a fired failure: appends to the log, advances the schedule,
  /// then invokes the listener.
  void committed(const FaultRecord& rec);
  /// Accumulates in-flight disposal counts into the record for `pe`'s most
  /// recent failure (log stays deterministic: counts are part of replay).
  void note_inflight(int pe, bool redirected);

  // ---- results -------------------------------------------------------------
  const std::vector<FaultRecord>& log() const { return log_; }
  int failures_injected() const { return static_cast<int>(log_.size()); }
  /// Canonical text form of the log; byte-identical across same-seed runs.
  std::string format_log() const;

 private:
  void schedule_next(Time after);

  FaultConfig cfg_{};
  Rng rng_{1};
  std::function<void(const FaultRecord&)> listener_;
  std::size_t fixed_cursor_ = 0;
  bool scheduled_ = false;   ///< schedule stream has a pending time
  Time scheduled_time_ = 0;
  int scheduled_victim_ = -1;
  bool armed_oneshot_ = false;
  Time armed_time_ = 0;
  int armed_victim_ = -1;
  int budget_used_ = 0;      ///< fired + skipped failures
  std::vector<FaultRecord> log_;
  std::vector<int> record_of_pe_;  ///< per-PE index of the live failure record
};

}  // namespace sim
