#include "ft/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "trace/trace.hpp"

namespace charm::ft {

namespace {

constexpr std::uint64_t kMagic = 0x434B50543134ull;  // "CKPT14"

struct ElementRecord {
  CollectionId col = -1;
  ObjIndex idx{};
  std::vector<std::byte> bytes;
  void pup(pup::Er& p) {
    p | col;
    p | idx;
    p | bytes;
  }
};

}  // namespace

void checkpoint_to_file(Runtime& rt, const std::string& path, Callback done,
                        DiskParams params) {
  // Host-side serialization (contents), with per-PE costs charged in virtual
  // time for the pack and the parallel file write.
  std::vector<ElementRecord> records;
  std::vector<double> pe_bytes(static_cast<std::size_t>(rt.npes()), 0.0);

  for (std::size_t ci = 0; ci < rt.collection_count(); ++ci) {
    Collection& c = rt.collection(static_cast<CollectionId>(ci));
    if (!c.checkpointable) continue;
    c.pe.for_each_touched([&](std::size_t pe, PeLocal& pl) {
      for (auto& [ix, obj] : pl.elems) {
        ElementRecord rec;
        rec.col = c.id;
        rec.idx = ix;
        pup::Packer pk(rec.bytes);
        obj->pup(pk);
        pe_bytes[pe] += static_cast<double>(rec.bytes.size());
        records.push_back(std::move(rec));
      }
    });
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint_to_file: cannot open " + path);
  std::vector<std::byte> blob;
  {
    pup::Packer pk(blob);
    std::uint64_t magic = kMagic;
    pk | magic;
    std::uint64_t n = records.size();
    pk | n;
    for (auto& r : records) pk | r;
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));

  // Model: every PE packs and writes its share in parallel; completion is a
  // barrier over the slowest PE.
  const double ckpt_begin = rt.now();
  auto remaining = std::make_shared<int>(rt.npes());
  for (int pe = 0; pe < rt.npes(); ++pe) {
    const double cost = params.open_overhead +
                        pe_bytes[static_cast<std::size_t>(pe)] / params.disk_bw;
    rt.send_control(pe, 32, [&rt, cost, remaining, done, ckpt_begin]() {
      rt.charge(cost);
      if (--*remaining == 0) {
        rt.after(rt.my_pe(), rt.tree_wave_latency(), [&rt, done, ckpt_begin]() {
          if (trace::Tracer* tr = rt.machine().tracer()) {
            tr->phase_span(trace::Phase::kCheckpoint, /*pe=*/0, ckpt_begin, rt.now());
          }
          done.invoke(rt, ReductionResult{});
        });
      }
    });
  }
}

std::size_t restart_from_file(Runtime& rt, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("restart_from_file: cannot open " + path);
  std::vector<char> raw{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  std::vector<std::byte> blob(raw.size());
  std::memcpy(blob.data(), raw.data(), raw.size());
  pup::Unpacker u(blob);
  std::uint64_t magic = 0;
  u | magic;
  if (magic != kMagic) throw std::runtime_error("restart_from_file: bad checkpoint magic");
  std::uint64_t n = 0;
  u | n;

  std::size_t restored = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    ElementRecord rec;
    u | rec;
    Collection& c = rt.collection(rec.col);
    const ChareTypeInfo& info = Registry::instance().type(c.type);
    if (info.create_default == nullptr)
      throw std::runtime_error("restart: chare type is not default-constructible");
    std::unique_ptr<ArrayElementBase> obj(info.create_default());
    pup::Unpacker eu(rec.bytes);
    obj->pup(eu);
    rt.seed_element(rec.col, rec.idx, std::move(obj), rt.home_pe(rec.idx));
    ++restored;
  }
  return restored;
}

}  // namespace charm::ft
