// LeanMD example: molecular dynamics with cells + pairwise computes,
// clustered density, RefineLB, and a double in-memory checkpoint with a
// simulated node failure mid-run.

#include <cstdio>

#include "ft/mem_checkpoint.hpp"
#include "miniapps/leanmd/leanmd.hpp"

using namespace charm;

int main() {
  sim::MachineConfig cfg;
  cfg.npes = 8;
  sim::Machine machine(cfg);
  Runtime rt(machine);

  leanmd::Params p;
  p.nx = p.ny = p.nz = 4;
  p.atoms_per_cell = 24;
  p.clustering = 2.0;  // denser on the high-x side: load imbalance
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);
  rt.lb().set_strategy(lb::make_refine(1.05));
  rt.lb().set_period(3);

  ft::MemCheckpointer ckpt(rt);

  std::printf("LeanMD: %d cells, %d computes, %zu atoms on %d PEs\n", sim.ncells(),
              sim.ncomputes(), sim.total_atoms(), rt.npes());

  rt.on_pe(0, [&] {
    sim.run(6, Callback::to_function([&](ReductionResult&&) {
      std::printf("[vt=%.3f ms] 6 steps done; taking double in-memory checkpoint\n",
                  charm::now() * 1e3);
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        std::printf("[vt=%.3f ms] checkpoint complete (%llu bytes); continuing\n",
                    charm::now() * 1e3,
                    static_cast<unsigned long long>(ckpt.checkpoint_bytes()));
        sim.run(3, Callback::to_function([&](ReductionResult&&) {
          std::printf("[vt=%.3f ms] PE 5 fails!  recovering from buddy copies...\n",
                      charm::now() * 1e3);
          ckpt.fail_and_recover(5, Callback::to_function([&](ReductionResult&&) {
            std::printf("[vt=%.3f ms] recovered; rolled back to the checkpoint\n",
                        charm::now() * 1e3);
            sim.run(6, Callback::to_function([&](ReductionResult&&) {
              std::printf("[vt=%.3f ms] finished after recovery\n", charm::now() * 1e3);
              rt.exit();
            }));
          }));
        }));
      }));
    }));
  });
  machine.run();

  std::printf("final: %zu atoms (conserved), kinetic energy %.6f\n", sim.total_atoms(),
              sim.kinetic_energy());
  std::printf("LB rounds: %d, balancer invocations: %d\n", rt.lb().rounds_completed(),
              rt.lb().lb_invocations());
  return 0;
}
