file(REMOVE_RECURSE
  "CMakeFiles/fig17_cloud_leanmd.dir/fig17_cloud_leanmd.cpp.o"
  "CMakeFiles/fig17_cloud_leanmd.dir/fig17_cloud_leanmd.cpp.o.d"
  "fig17_cloud_leanmd"
  "fig17_cloud_leanmd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cloud_leanmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
