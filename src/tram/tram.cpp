#include "tram/tram.hpp"

#include <algorithm>
#include <utility>

namespace charm::tram {

Core::Core(Runtime& rt, CollectionId target, Params params)
    : rt_(rt),
      col_(target),
      params_(params),
      pes_(static_cast<std::size_t>(rt.npes())) {}

int Core::resolve_dest(int pe, const ObjIndex& idx) {
  // Location reads probe: a PE with no PeLocal block has no cache or home
  // entries, so the answer is the same as a dense lookup on empty maps.
  Collection& c = rt_.collection(col_);
  if (c.find(pe, idx) != nullptr) return pe;
  const PeLocal* pl = c.local_if(pe);
  if (pl != nullptr) {
    if (auto it = pl->loc_cache.find(idx); it != pl->loc_cache.end())
      return it->second;
  }
  int dest = rt_.home_pe(idx);
  if (dest == pe && pl != nullptr) {
    auto hit = pl->home.find(idx);
    if (hit != pl->home.end() && hit->second.location != kInvalidPe)
      dest = hit->second.location;
  }
  return dest;
}

int Core::better_location(int pe, const ObjIndex& idx) {
  Collection& c = rt_.collection(col_);
  const PeLocal* pl = c.local_if(pe);
  int better = kInvalidPe;
  if (rt_.home_pe(idx) == pe) {
    if (pl != nullptr) {
      auto it = pl->home.find(idx);
      if (it != pl->home.end() && !it->second.in_transit &&
          it->second.location != kInvalidPe && it->second.location != pe) {
        better = it->second.location;
      }
    }
  } else {
    if (pl != nullptr) {
      auto it = pl->loc_cache.find(idx);
      if (it != pl->loc_cache.end() && it->second != pe) better = it->second;
    }
    if (better == kInvalidPe) better = rt_.home_pe(idx);
  }
  return better;
}

void Core::local_miss(int pe, const ObjIndex& idx, EntryId ep,
                      std::vector<std::byte> payload, bool flush_through) {
  const int better = better_location(pe, idx);
  if (better != kInvalidPe && better != pe) {
    route_packed(pe, idx, ep, better, payload.data(), payload.size(), flush_through);
    rt_.release_payload(std::move(payload));
    return;
  }
  // Mid-migration or unknown: the point-send protocol buffers at the home
  // until the element lands.
  rt_.send_point(col_, idx, ep, std::move(payload));
}

void Core::route_packed(int pe, const ObjIndex& idx, EntryId ep, int dest,
                        const std::byte* data, std::size_t len,
                        bool flush_through) {
  const int peer = rt_.machine().topology().next_on_route(pe, dest);
  Buffer& buf = buffer_for(pe, peer);
  FrameHead head{};
  head.idx = idx;
  head.ep = ep;
  head.dest_pe = dest;
  head.len = static_cast<std::uint32_t>(len);
  const std::size_t at = buf.frames.size();
  buf.frames.resize(at + sizeof(FrameHead) + len);
  std::memcpy(buf.frames.data() + at, &head, sizeof(FrameHead));
  if (len != 0) std::memcpy(buf.frames.data() + at + sizeof(FrameHead), data, len);
  buf.payload_bytes += len;
  ++buf.count;
  if (buf.count >= params_.buffer_items) flush_buffer(pe, peer, flush_through);
}

Core::Buffer& Core::buffer_for(int pe, int peer) {
  auto& buffers = pes_.ref(static_cast<std::size_t>(pe)).buffers;
  auto it = buffers.find(peer);
  if (it == buffers.end()) {
    it = buffers.emplace(peer, Buffer{}).first;
    it->second.frames = rt_.acquire_payload(0);
  }
  return it->second;
}

void Core::insert(const ObjIndex& dest_idx, EntryId ep, std::vector<std::byte> payload) {
  const int pe = rt_.machine().current_pe();
  ++items_;
  const int dest = resolve_dest(pe, dest_idx);
  if (dest == pe) {
    Collection& c = rt_.collection(col_);
    ArrayElementBase* elem = c.find(pe, dest_idx);
    rt_.charge(rt_.config().deliver_cost);
    if (elem != nullptr) {
      rt_.deliver_local(c, *elem, ep, payload);
      rt_.release_payload(std::move(payload));
      return;
    }
    local_miss(pe, dest_idx, ep, std::move(payload), /*flush_through=*/false);
    return;
  }
  route_packed(pe, dest_idx, ep, dest, payload.data(), payload.size(),
               /*flush_through=*/false);
  rt_.release_payload(std::move(payload));
}

void Core::flush_buffer(int pe, int peer, bool flush_through) {
  PeState* state = pes_.probe(static_cast<std::size_t>(pe));
  if (state == nullptr) return;  // never buffered anything: nothing to flush
  auto it = state->buffers.find(peer);
  if (it == state->buffers.end() || it->second.count == 0) return;
  Buffer buf = std::move(it->second);
  state->buffers.erase(it);

  const std::size_t bytes = buf.payload_bytes + buf.count * params_.item_overhead;
  ++batches_;
  routed_items_ += buf.count;
  batch_bytes_ += bytes;

  rt_.send_control(peer, bytes, [this, peer, flush_through, buf = std::move(buf)]() mutable {
    deliver_batch(peer, std::move(buf), flush_through);
  });
}

void Core::deliver_batch(int pe, Buffer buf, bool flush_through) {
  Collection& c = rt_.collection(col_);
  std::size_t off = 0;
  while (off < buf.frames.size()) {
    FrameHead head;
    std::memcpy(&head, buf.frames.data() + off, sizeof(FrameHead));
    const std::byte* data = buf.frames.data() + off + sizeof(FrameHead);
    off += sizeof(FrameHead) + head.len;
    if (head.dest_pe == pe) {
      ArrayElementBase* elem = c.find(pe, head.idx);
      rt_.charge(rt_.config().deliver_cost);
      if (elem != nullptr) {
        rt_.deliver_local(c, *elem, head.ep, data, head.len);
      } else {
        std::vector<std::byte> payload = rt_.acquire_payload(head.len);
        payload.insert(payload.end(), data, data + head.len);
        local_miss(pe, head.idx, head.ep, std::move(payload), flush_through);
      }
    } else {
      route_packed(pe, head.idx, head.ep, head.dest_pe, data, head.len,
                   flush_through);
    }
  }
  rt_.release_payload(std::move(buf.frames));
  if (flush_through) flush_pe(pe, /*flush_through=*/true);
}

void Core::flush_pe(int pe, bool flush_through) {
  PeState* state = pes_.probe(static_cast<std::size_t>(pe));
  if (state == nullptr) return;
  std::vector<int> peers;
  peers.reserve(state->buffers.size());
  for (const auto& [peer, buf] : state->buffers)
    if (buf.count != 0) peers.push_back(peer);
  std::sort(peers.begin(), peers.end());  // deterministic flush order
  for (int peer : peers) flush_buffer(pe, peer, flush_through);
}

void Core::flush_all() {
  for (int pe = 0; pe < rt_.npes(); ++pe) {
    ++control_msgs_;
    control_bytes_ += 16;
    rt_.send_control(pe, 16, [this, pe]() { flush_pe(pe, /*flush_through=*/true); });
  }
}

}  // namespace charm::tram
