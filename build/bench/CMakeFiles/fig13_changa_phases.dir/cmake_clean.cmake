file(REMOVE_RECURSE
  "CMakeFiles/fig13_changa_phases.dir/fig13_changa_phases.cpp.o"
  "CMakeFiles/fig13_changa_phases.dir/fig13_changa_phases.cpp.o.d"
  "fig13_changa_phases"
  "fig13_changa_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_changa_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
