// PUP is header-only; this translation unit anchors the vtable for pup::Er.
#include "pup/pup.hpp"

namespace pup {
// Intentionally empty: Er's key function is defaulted in the header; the
// library still compiles this TU so the archive has a home for the module.
}  // namespace pup
