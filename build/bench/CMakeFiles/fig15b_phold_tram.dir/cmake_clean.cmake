file(REMOVE_RECURSE
  "CMakeFiles/fig15b_phold_tram.dir/fig15b_phold_tram.cpp.o"
  "CMakeFiles/fig15b_phold_tram.dir/fig15b_phold_tram.cpp.o.d"
  "fig15b_phold_tram"
  "fig15b_phold_tram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15b_phold_tram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
