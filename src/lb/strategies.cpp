// Centralized load balancing strategies: GreedyLB, RefineLB, HybridLB, plus
// RotateLB/RandomLB for testing.  All strategies are speed-aware: predicted
// completion of PE p is sum(work)/speed[p], so they remain correct under DVFS
// and heterogeneous clouds.
//
// Every strategy has two equivalent paths (DESIGN.md §13):
//  - a *rebuild* path: the original from-scratch algorithm, kept verbatim, used
//    for hand-built Stats (aux.valid == false) and whenever a chare is hosted
//    outside [0, npes) (shrink rounds, where the old clamping semantics apply);
//  - an *indexed* path consuming the load database's maintained aggregates
//    (per-PE completion sums, per-PE chare buckets, the work-order index).
// The two paths must pick bit-identical migrations: same FP accumulation
// order wherever a sum feeds a comparison, and the same tie-breaks (the old
// max_element/min_element keep the first — i.e. lowest-PE — extremum, so the
// indexed heaps order ties toward the smaller PE).  test_lb_incremental fuzzes
// this equivalence.

#include "lb/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <queue>
#include <set>

#include "sim/rng.hpp"

namespace charm::lb {

void SpeedMap::set(int pe, double f) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), pe,
                             [](const std::pair<int, double>& e, int p) { return e.first < p; });
  if (it != entries_.end() && it->first == pe) {
    if (f == 1.0)
      entries_.erase(it);
    else
      it->second = f;
  } else if (f != 1.0) {
    entries_.insert(it, {pe, f});
  }
}

double SpeedMap::sum_first(int npes) const {
  // Replays std::accumulate over the dense vector.  A run of k default
  // entries adds 1.0 k times; when the accumulator holds an exact small
  // integer every such step is exact, so the run collapses to one add.
  double acc = 0.0;
  int pe = 0;
  auto add_default_run = [&acc](int k) {
    while (k > 0) {
      const double kd = static_cast<double>(k);
      if (acc == std::floor(acc) && std::abs(acc) < 9.0e15 && acc + kd < 9.0e15) {
        acc += kd;
        return;
      }
      acc += 1.0;
      --k;
    }
  };
  for (const auto& [p, f] : entries_) {
    if (p >= npes) break;
    add_default_run(p - pe);
    acc += f;
    pe = p + 1;
  }
  add_default_run(npes - pe);
  return acc;
}

namespace {

bool indexed_ok(const Stats& s) {
  // The indexed aggregates assume no hosting PE needs the old
  // `min(c.pe, npes - 1)` clamp; shrink rounds take the rebuild path.
  return s.aux.valid && s.npes >= 1 && s.aux.max_hosting_pe < s.npes;
}

std::vector<std::size_t> migratable_by_desc_work(const Stats& s) {
  if (s.aux.valid)  // maintained (work desc, rank asc) index — same sequence
    return {s.aux.desc_by_work.begin(), s.aux.desc_by_work.end()};
  std::vector<std::size_t> ids;
  ids.reserve(s.chares.size());
  for (std::size_t i = 0; i < s.chares.size(); ++i)
    if (s.chares[i].migratable) ids.push_back(i);
  std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
    if (s.chares[a].work != s.chares[b].work) return s.chares[a].work > s.chares[b].work;
    return a < b;  // deterministic tie-break
  });
  return ids;
}

std::vector<double> base_completion(const Stats& s) {
  // Completion contributed by non-migratable chares (they stay put).
  std::vector<double> done(static_cast<std::size_t>(s.npes), 0.0);
  if (indexed_ok(s)) {
    // Per-PE sums maintained in bucket order; a PE's partial sums see exactly
    // the same addend sequence as the interleaved loop below, so the scatter
    // is bit-identical.
    for (std::size_t k = 0; k < s.aux.pes.size(); ++k)
      done[static_cast<std::size_t>(s.aux.pes[k])] = s.aux.done_nonmig[k];
    return done;
  }
  for (const ChareInfo& c : s.chares) {
    if (!c.migratable && c.pe < s.npes)
      done[static_cast<std::size_t>(c.pe)] += c.work / s.pe_speed[static_cast<std::size_t>(c.pe)];
  }
  return done;
}

std::vector<Migration> to_migrations(const Stats& s, const std::vector<int>& target) {
  std::vector<Migration> out;
  for (std::size_t i = 0; i < s.chares.size(); ++i) {
    const ChareInfo& c = s.chares[i];
    if (c.migratable && target[i] != c.pe)
      out.push_back(Migration{c.col, c.idx, c.pe, target[i]});
  }
  return out;
}

/// Speed-aware min-completion assignment over a subset of PEs.  PEs are
/// bucketed by identical speed so the argmin is O(#speed classes) per chare.
class MinCompletionAssigner {
 public:
  MinCompletionAssigner(const Stats& s, std::vector<int> pes, std::vector<double> done)
      : speeds_(s.pe_speed), done_(std::move(done)) {
    std::map<double, std::vector<int>> classes;
    for (int pe : pes) classes[speeds_[static_cast<std::size_t>(pe)]].push_back(pe);
    for (auto& [speed, members] : classes) {
      Class cl;
      cl.speed = speed;
      for (int pe : members) cl.heap.push({done_[static_cast<std::size_t>(pe)], pe});
      classes_.push_back(std::move(cl));
    }
  }

  int place(double work) {
    double best_time = 0;
    std::size_t best = classes_.size();
    for (std::size_t k = 0; k < classes_.size(); ++k) {
      const auto& top = classes_[k].heap.top();
      const double t = top.first + work / classes_[k].speed;
      if (best == classes_.size() || t < best_time ||
          (t == best_time && top.second < classes_[best].heap.top().second)) {
        best = k;
        best_time = t;
      }
    }
    Class& cl = classes_[best];
    auto [cur, pe] = cl.heap.top();
    cl.heap.pop();
    cl.heap.push({cur + work / cl.speed, pe});
    done_[static_cast<std::size_t>(pe)] = cur + work / cl.speed;
    return pe;
  }

 private:
  struct Class {
    double speed = 1.0;
    // min-heap of (completion, pe); pe tie-break keeps runs deterministic
    std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                        std::greater<>>
        heap;
  };
  const SpeedMap& speeds_;
  std::vector<double> done_;
  std::vector<Class> classes_;
};

class GreedyLB final : public Strategy {
 public:
  std::string name() const override { return "GreedyLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    std::vector<int> pes(static_cast<std::size_t>(s.npes));
    std::iota(pes.begin(), pes.end(), 0);
    MinCompletionAssigner assigner(s, pes, base_completion(s));
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i) target[i] = s.chares[i].pe;
    for (std::size_t i : migratable_by_desc_work(s)) target[i] = assigner.place(s.chares[i].work);
    return to_migrations(s, target);
  }
};

class RefineLB final : public Strategy {
 public:
  explicit RefineLB(double tolerance) : tol_(tolerance) {}
  std::string name() const override { return "RefineLB"; }

  std::vector<Migration> assign(const Stats& s) override {
    if (indexed_ok(s)) return assign_indexed(s);
    return assign_rebuild(s);
  }

 private:
  // Original from-scratch algorithm, kept verbatim as the reference the
  // indexed path must match bit-for-bit (and as the shrink-round fallback).
  std::vector<Migration> assign_rebuild(const Stats& s) {
    const auto n = static_cast<std::size_t>(s.npes);
    std::vector<double> done(n, 0.0);
    std::vector<int> target(s.chares.size());
    std::vector<std::vector<std::size_t>> on_pe(n);
    double total_work = 0;
    for (std::size_t i = 0; i < s.chares.size(); ++i) {
      const ChareInfo& c = s.chares[i];
      const int pe = std::min(c.pe, s.npes - 1);
      target[i] = pe;
      done[static_cast<std::size_t>(pe)] += c.work / s.pe_speed[static_cast<std::size_t>(pe)];
      if (c.migratable) on_pe[static_cast<std::size_t>(pe)].push_back(i);
      total_work += c.work;
    }
    const double total_speed = s.pe_speed.sum_first(s.npes);
    const double target_time = total_work / total_speed;

    for (int iter = 0; iter < 8 * s.npes; ++iter) {
      const auto hot = static_cast<std::size_t>(
          std::max_element(done.begin(), done.end()) - done.begin());
      const auto cold = static_cast<std::size_t>(
          std::min_element(done.begin(), done.end()) - done.begin());
      if (done[hot] <= target_time * tol_) break;
      // Move the largest chare that fits without overshooting the target.
      std::size_t pick = s.chares.size();
      double pick_work = -1;
      for (std::size_t i : on_pe[hot]) {
        const double w = s.chares[i].work;
        if (done[cold] + w / s.pe_speed[cold] <= target_time * tol_ && w > pick_work) {
          pick = i;
          pick_work = w;
        }
      }
      if (pick == s.chares.size()) {
        // Nothing fits under the cap; move the smallest to make progress.
        for (std::size_t i : on_pe[hot])
          if (pick == s.chares.size() || s.chares[i].work < pick_work ||
              pick_work < 0) {
            pick = i;
            pick_work = s.chares[i].work;
          }
        if (pick == s.chares.size()) break;
      }
      on_pe[hot].erase(std::find(on_pe[hot].begin(), on_pe[hot].end(), pick));
      on_pe[cold].push_back(pick);
      done[hot] -= pick_work / s.pe_speed[hot];
      done[cold] += pick_work / s.pe_speed[cold];
      target[pick] = static_cast<int>(cold);
    }
    return to_migrations(s, target);
  }

  // Indexed path over the maintained aggregates: lazy min/max completion
  // heaps instead of per-iteration O(P) extremum scans, and sorted per-PE
  // bucket views (materialized only for PEs the loop actually touches)
  // instead of linear fit scans + erase(find).
  //
  // Equivalence notes (the fuzz oracle pins all of these):
  //  - done[] starts from the maintained per-PE sums, which accumulate each
  //    PE's own chares in the same (canonical) order the rebuild loop visits
  //    them, so every entry is bit-identical.
  //  - the heaps break value-ties toward the smaller PE, matching
  //    max_element/min_element returning the first extremum.
  //  - a view is sorted by (work desc, arrival asc) where arrival is the
  //    chare's position in the rebuild path's per-PE list (canonical rank for
  //    initial members, a global counter for chares moved in later).  "Largest
  //    fitting, first in list among ties" is then the first element of the
  //    fitting suffix — found by partition_point, valid because the fit
  //    predicate done + w/speed <= cap is monotone in w even in FP — and
  //    "smallest, first in list among ties" is the first element of the
  //    minimal-work tail block.
  //  - the done[] update arithmetic is token-identical to the rebuild path.
  std::vector<Migration> assign_indexed(const Stats& s) {
    const auto n = static_cast<std::size_t>(s.npes);
    std::vector<double> done(n, 0.0);
    for (std::size_t k = 0; k < s.aux.pes.size(); ++k)
      done[static_cast<std::size_t>(s.aux.pes[k])] = s.aux.done_all[k];
    const double total_speed = s.pe_speed.sum_first(s.npes);
    const double target_time = s.aux.total_work / total_speed;

    struct Entry {
      double work;
      std::uint64_t arrival;
      std::uint32_t rank;
    };
    auto before = [](const Entry& a, const Entry& b) {
      if (a.work != b.work) return a.work > b.work;
      return a.arrival < b.arrival;
    };
    // Per-PE sorted views, built on demand; extras hold chares moved onto a
    // PE whose view is not materialized yet.
    std::vector<std::vector<Entry>> view(n);
    std::vector<std::vector<Entry>> extras(n);
    std::vector<char> built(n, 0);
    std::uint64_t arrival_counter = s.chares.size();
    auto bucket_of = [&](int pe) -> std::pair<std::uint32_t, std::uint32_t> {
      const auto it = std::lower_bound(s.aux.pes.begin(), s.aux.pes.end(), pe);
      if (it == s.aux.pes.end() || *it != pe) return {0, 0};
      const auto k = static_cast<std::size_t>(it - s.aux.pes.begin());
      return {s.aux.bucket_off[k], s.aux.bucket_off[k + 1]};
    };
    auto ensure_view = [&](std::size_t pe) -> std::vector<Entry>& {
      std::vector<Entry>& v = view[pe];
      if (!built[pe]) {
        built[pe] = 1;
        const auto [b, e] = bucket_of(static_cast<int>(pe));
        v.reserve((e - b) + extras[pe].size());
        for (std::uint32_t k = b; k < e; ++k) {
          const std::uint32_t r = s.aux.bucket_ranks[k];
          if (s.chares[r].migratable) v.push_back({s.chares[r].work, r, r});
        }
        std::sort(v.begin(), v.end(), before);
      }
      if (!extras[pe].empty()) {
        for (Entry& ex : extras[pe]) v.push_back(ex);
        extras[pe].clear();
        std::sort(v.begin(), v.end(), before);
      }
      return v;
    };

    // Lazy-deletion heaps keyed by completion; an entry is valid iff it
    // matches the authoritative done[].  Ties order toward the smaller PE.
    using HeapEntry = std::pair<double, int>;
    auto max_less = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    };
    auto min_less = [](const HeapEntry& a, const HeapEntry& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    };
    std::vector<HeapEntry> seedv(n);
    for (std::size_t pe = 0; pe < n; ++pe) seedv[pe] = {done[pe], static_cast<int>(pe)};
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(max_less)> maxq(
        max_less, seedv);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(min_less)> minq(
        min_less, std::move(seedv));
    auto top_of = [&done](auto& q) {
      while (q.top().first != done[static_cast<std::size_t>(q.top().second)]) q.pop();
      return static_cast<std::size_t>(q.top().second);
    };

    std::vector<std::pair<std::uint32_t, int>> moves;  // (rank, final target)
    std::vector<std::uint32_t> final_slot(s.chares.size(), 0xffffffffu);
    for (int iter = 0; iter < 8 * s.npes; ++iter) {
      const std::size_t hot = top_of(maxq);
      const std::size_t cold = top_of(minq);
      if (done[hot] <= target_time * tol_) break;
      std::vector<Entry>& hv = ensure_view(hot);
      if (hv.empty()) break;  // nothing migratable on the hot PE
      const double cap = target_time * tol_;
      const double cold_speed = s.pe_speed[cold];
      auto does_not_fit = [&](const Entry& e) { return !(done[cold] + e.work / cold_speed <= cap); };
      auto it = std::partition_point(hv.begin(), hv.end(), does_not_fit);
      if (it == hv.end()) {
        // Nothing fits under the cap; move the smallest (first of the
        // minimal-work tail block = earliest arrival among ties).
        const double wmin = hv.back().work;
        it = std::partition_point(hv.begin(), hv.end(),
                                  [&](const Entry& e) { return e.work > wmin; });
      }
      const Entry picked = *it;
      hv.erase(it);
      const Entry moved{picked.work, arrival_counter++, picked.rank};
      if (built[cold]) {
        std::vector<Entry>& cv = ensure_view(cold);  // merge pending extras first
        auto pos = std::partition_point(cv.begin(), cv.end(),
                                        [&](const Entry& e) { return e.work >= moved.work; });
        cv.insert(pos, moved);
      } else {
        extras[cold].push_back(moved);
      }
      done[hot] -= picked.work / s.pe_speed[hot];
      done[cold] += picked.work / s.pe_speed[cold];
      maxq.push({done[hot], static_cast<int>(hot)});
      maxq.push({done[cold], static_cast<int>(cold)});
      minq.push({done[hot], static_cast<int>(hot)});
      minq.push({done[cold], static_cast<int>(cold)});
      if (final_slot[picked.rank] == 0xffffffffu) {
        final_slot[picked.rank] = static_cast<std::uint32_t>(moves.size());
        moves.push_back({picked.rank, static_cast<int>(cold)});
      } else {
        moves[final_slot[picked.rank]].second = static_cast<int>(cold);
      }
    }

    std::sort(moves.begin(), moves.end());
    std::vector<Migration> out;
    out.reserve(moves.size());
    for (const auto& [rank, to] : moves) {
      const ChareInfo& c = s.chares[rank];
      if (to != c.pe) out.push_back(Migration{c.col, c.idx, c.pe, to});
    }
    return out;
  }

  double tol_;
};

/// Two-level hierarchical balancing (HybridLB): balance group totals first,
/// then PEs within each group.
class HybridLB final : public Strategy {
 public:
  std::string name() const override { return "HybridLB"; }

  std::vector<Migration> assign(const Stats& s) override {
    const int ngroups = std::max(1, static_cast<int>(std::round(std::sqrt(s.npes))));
    const int per_group = (s.npes + ngroups - 1) / ngroups;
    auto group_of = [&](int pe) { return pe / per_group; };

    // Level 1: greedy over groups (capacity = sum of member speeds).
    std::vector<double> group_speed(static_cast<std::size_t>(ngroups), 0.0);
    for (int pe = 0; pe < s.npes; ++pe)
      group_speed[static_cast<std::size_t>(group_of(pe))] +=
          s.pe_speed[static_cast<std::size_t>(pe)];

    std::vector<double> group_done(static_cast<std::size_t>(ngroups), 0.0);
    for (const ChareInfo& c : s.chares)
      if (!c.migratable)
        group_done[static_cast<std::size_t>(group_of(std::min(c.pe, s.npes - 1)))] +=
            c.work / group_speed[static_cast<std::size_t>(group_of(std::min(c.pe, s.npes - 1)))];

    const std::vector<std::size_t> order = migratable_by_desc_work(s);
    std::vector<int> chare_group(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i)
      chare_group[i] = group_of(std::min(s.chares[i].pe, s.npes - 1));
    for (std::size_t i : order) {
      int best = 0;
      double best_t = 0;
      for (int g = 0; g < ngroups; ++g) {
        const double t = group_done[static_cast<std::size_t>(g)] +
                         s.chares[i].work / group_speed[static_cast<std::size_t>(g)];
        if (g == 0 || t < best_t) {
          best = g;
          best_t = t;
        }
      }
      chare_group[i] = best;
      group_done[static_cast<std::size_t>(best)] = best_t;
    }

    // Level 2: greedy within each group.  The scratch completion vector must
    // cover every hosting PE (chares can sit beyond npes before a shrink).
    std::size_t done_size = static_cast<std::size_t>(s.npes);
    for (const ChareInfo& c : s.chares)
      done_size = std::max(done_size, static_cast<std::size_t>(c.pe) + 1);
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i) target[i] = s.chares[i].pe;
    for (int g = 0; g < ngroups; ++g) {
      std::vector<int> pes;
      for (int pe = g * per_group; pe < std::min((g + 1) * per_group, s.npes); ++pe)
        pes.push_back(pe);
      if (pes.empty()) continue;
      std::vector<double> done(done_size, 0.0);
      for (const ChareInfo& c : s.chares)
        if (!c.migratable && group_of(std::min(c.pe, s.npes - 1)) == g)
          done[static_cast<std::size_t>(c.pe)] +=
              c.work / s.pe_speed[static_cast<std::size_t>(c.pe)];
      MinCompletionAssigner assigner(s, pes, done);
      for (std::size_t i : order)
        if (chare_group[i] == g) target[i] = assigner.place(s.chares[i].work);
    }
    return to_migrations(s, target);
  }
};

class RotateLB final : public Strategy {
 public:
  std::string name() const override { return "RotateLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    std::vector<Migration> out;
    for (const ChareInfo& c : s.chares)
      if (c.migratable)
        out.push_back(Migration{c.col, c.idx, c.pe, (c.pe + 1) % s.npes});
    return out;
  }
};

class RandomLB final : public Strategy {
 public:
  explicit RandomLB(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "RandomLB"; }
  std::vector<Migration> assign(const Stats& s) override {
    sim::Rng rng(seed_++);
    std::vector<int> target(s.chares.size());
    for (std::size_t i = 0; i < s.chares.size(); ++i)
      target[i] = s.chares[i].migratable
                      ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s.npes)))
                      : s.chares[i].pe;
    return to_migrations(s, target);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<Strategy> make_greedy() { return std::make_unique<GreedyLB>(); }
std::unique_ptr<Strategy> make_refine(double tolerance) {
  return std::make_unique<RefineLB>(tolerance);
}
std::unique_ptr<Strategy> make_hybrid() { return std::make_unique<HybridLB>(); }
std::unique_ptr<Strategy> make_rotate() { return std::make_unique<RotateLB>(); }
std::unique_ptr<Strategy> make_random(std::uint64_t seed) {
  return std::make_unique<RandomLB>(seed);
}

double imbalance_of(const Stats& s) {
  std::vector<double> done(static_cast<std::size_t>(s.npes), 0.0);
  for (const ChareInfo& c : s.chares) {
    const int pe = std::min(c.pe, s.npes - 1);
    done[static_cast<std::size_t>(pe)] += c.work / s.pe_speed[static_cast<std::size_t>(pe)];
  }
  const double mx = *std::max_element(done.begin(), done.end());
  const double avg = std::accumulate(done.begin(), done.end(), 0.0) / s.npes;
  return avg > 0 ? mx / avg : 1.0;
}

}  // namespace charm::lb
