file(REMOVE_RECURSE
  "CMakeFiles/leanmd_mini.dir/leanmd_mini.cpp.o"
  "CMakeFiles/leanmd_mini.dir/leanmd_mini.cpp.o.d"
  "leanmd_mini"
  "leanmd_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leanmd_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
