#pragma once
// Barnes-Hut mini-app (§IV-C) with ChaNGa-style phases (Fig 13).
//
// The domain is oct-decomposed into TreePieces (many more pieces than PEs).
// Every step runs the phases the paper's ChaNGa plot breaks out:
//
//   DD      domain decomposition — particles that drifted out of a piece's
//           region are shipped to the owning piece (QD-delimited);
//   TB      tree build — each piece builds its local summary (center of mass,
//           mass, bounding radius) and the summaries are gathered+broadcast;
//   Gravity far pieces interact via their multipole (monopole) summary; near
//           pieces are fetched with HIGH-priority remote data requests
//           (§IV-C-2: prioritized messages) and integrated directly;
//   LB      AtSync with an ORB strategy over piece centers of mass.
//
// The Plummer-like clustered particle distribution makes central pieces far
// heavier — the imbalance Fig 12 measures.

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/charm.hpp"

namespace charm::barnes {

struct Params {
  int pieces_per_dim = 4;     ///< pieces = pieces_per_dim^3
  int nparticles = 4096;
  double theta = 0.5;         ///< opening angle
  double dt = 1e-3;
  double soften = 0.05;
  double pair_cost = 8e-9;    ///< charged per direct particle pair
  double mono_cost = 4e-9;    ///< charged per particle-monopole interaction
  double concentration = 1.0; ///< Plummer core scale (smaller = more clustered)
  /// Cluster center: deliberately off the coarse decomposition grid lines so
  /// a one-piece-per-PE run is genuinely imbalanced (as in any real dataset).
  double cx = 0.37, cy = 0.41, cz = 0.47;
  std::uint64_t seed = 17;
};

struct Body {
  double x = 0, y = 0, z = 0;
  double vx = 0, vy = 0, vz = 0;
  double m = 1.0;
};

struct PieceSummary {
  std::int32_t piece = -1;
  double cx = 0, cy = 0, cz = 0;  ///< center of mass
  double mass = 0;
  double radius = 0;              ///< bounding radius around the COM
  std::int32_t count = 0;
};

struct StartMsg {
  int dummy = 0;
  template <class P>
  void pup(P& p) {
    p | dummy;
  }
};

struct BodiesMsg {
  std::int32_t from = -1;
  std::vector<Body> bodies;
  template <class P>
  void pup(P& p) {
    p | from;
    p | bodies;
  }
};

struct SummariesMsg {
  std::vector<PieceSummary> all;
  template <class P>
  void pup(P& p) {
    p | all;
  }
};

struct RequestMsg {
  std::int32_t from = -1;
  template <class P>
  void pup(P& p) {
    p | from;
  }
};

class Piece : public charm::ArrayElement<Piece, std::int32_t> {
 public:
  Piece() = default;
  Piece(const Params& p, ArrayProxy<Piece, std::int32_t> pieces);

  // phase entries (driver-broadcast)
  void exchange();                    // DD: ship drifted bodies
  void take_bodies(const BodiesMsg& m);
  void build(const StartMsg&);        // TB: summarize + contribute
  void gravity(const SummariesMsg& m);// Gravity: walk summaries
  void request(const RequestMsg& m);  // near-piece data request
  void reply(const BodiesMsg& m);     // HIGH-priority remote data reply
  void integrate(const StartMsg&);    // drift + AtSync (LB phase)
  void resume_from_sync() override;   // contributes the LB phase barrier

  std::array<double, 3> lb_coords() const override;
  void pup(pup::Er& p) override;

  const std::vector<Body>& bodies() const { return bodies_; }
  void seed_bodies(std::vector<Body> b) { bodies_ = std::move(b); }
  std::uint64_t direct_pairs() const { return direct_pairs_; }

  static Callback phase_cb;  ///< phase-barrier reduction target

 private:
  int owner_of(const Body& b) const;
  void maybe_finish_gravity();
  void accumulate_direct(const std::vector<Body>& other);

  Params p_{};
  ArrayProxy<Piece, std::int32_t> pieces_;
  std::vector<Body> bodies_;
  std::vector<double> acc_;        ///< 3 per body
  std::vector<PieceSummary> all_;  ///< gathered summaries for this step
  int replies_expected_ = 0;
  int replies_seen_ = 0;
  bool gravity_active_ = false;
  std::uint64_t direct_pairs_ = 0;
};

/// Per-step phase timings in virtual seconds (Fig 13 series).
struct PhaseTimes {
  double dd = 0, tb = 0, gravity = 0, lb = 0, total = 0;
};

class Simulation {
 public:
  Simulation(Runtime& rt, Params p);

  /// Run `steps` full steps; `done` fires at the end.
  void run(int steps, Callback done);

  const std::vector<PhaseTimes>& phase_times() const { return times_; }
  ArrayProxy<Piece, std::int32_t> pieces() const { return pieces_; }
  int npieces() const;
  std::size_t total_bodies() const;
  std::array<double, 3> total_momentum() const;

 private:
  void start_step();
  void after_dd();
  void after_tb(std::vector<std::vector<std::byte>> chunks);
  void after_gravity();
  void after_lb();

  Runtime& rt_;
  Params p_;
  ArrayProxy<Piece, std::int32_t> pieces_;
  int steps_left_ = 0;
  Callback done_;
  std::vector<PhaseTimes> times_;
  PhaseTimes current_{};
  double phase_start_ = 0;
};

}  // namespace charm::barnes

namespace pup {
template <>
struct AsBytes<charm::barnes::Params> : std::true_type {};
template <>
struct AsBytes<charm::barnes::Body> : std::true_type {};
template <>
struct AsBytes<charm::barnes::PieceSummary> : std::true_type {};
template <>
struct MemCopyable<charm::barnes::StartMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(int);
};
template <>
struct MemCopyable<charm::barnes::RequestMsg> : std::true_type {
  static constexpr std::size_t kFieldBytes = sizeof(std::int32_t);
};
}  // namespace pup
