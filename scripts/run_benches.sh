#!/usr/bin/env bash
# Runs every figure-reproduction bench, the taskbench overhead-surface sweep,
# and the micro-benchmarks, mirroring
#   for b in build/bench/*; do $b; done
# but skipping CMake bookkeeping entries.  Output goes to stdout; tee it into
# bench_output.txt for the EXPERIMENTS.md record.
#
# The script fails fast: the first bench that exits nonzero stops the run and
# its name is printed on stderr, so CI logs point straight at the culprit.
#
# --smoke runs each figure binary in its reduced configuration (tiny PE
# sweeps, few steps) — the CI bench-smoke gate.  micro_* binaries use
# google-benchmark's own flag parsing, so in smoke mode they get a
# minimal-time run instead of --smoke.
#
# --stats[=DIR] additionally passes --stats=DIR/BENCH_<name>.json to every
# figure/ablation/taskbench binary (default DIR: bench_stats), producing the
# machine-readable analytics record EXPERIMENTS.md points at.  Validate with
# scripts/check_stats_schema.py; inspect or diff with build/tools/statsview.
# The micro suite records host wall-clock rates instead: google-benchmark's
# JSON is captured and converted (scripts/micro_to_stats.py) into
# DIR/BENCH_micro.json, the one stats file that is NOT byte-deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
stats_dir=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    --stats) stats_dir="bench_stats" ;;
    --stats=*) stats_dir="${arg#--stats=}" ;;
    *) echo "usage: $0 [--smoke] [--stats[=DIR]]" >&2; exit 2 ;;
  esac
done
if [ -n "$stats_dir" ]; then
  mkdir -p "$stats_dir"
fi

for b in build/bench/fig* build/bench/ablation_* build/bench/taskbench \
         build/bench/collectives build/bench/scale build/bench/micro_*; do
  if [ ! -x "$b" ]; then
    continue
  fi
  echo "### $b"
  name="$(basename "$b")"
  case "$name" in
    micro_*)
      args=()
      if [ "$smoke" -eq 1 ]; then
        args+=(--benchmark_min_time=0.01)
      fi
      if [ -n "$stats_dir" ]; then
        args+=(--benchmark_out="$stats_dir/raw_${name}.json"
               --benchmark_out_format=json)
      fi
      ;;
    *)
      args=()
      if [ "$smoke" -eq 1 ]; then
        args+=(--smoke)
      fi
      if [ -n "$stats_dir" ]; then
        args+=(--stats="$stats_dir/BENCH_${name}.json")
      fi
      ;;
  esac
  rc=0
  "$b" ${args[@]+"${args[@]}"} || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "### FAILED: $b (exit $rc)" >&2
    exit 1
  fi
  if [ -n "$stats_dir" ]; then
    case "$name" in
      micro_*)
        # One micro suite today, so the record keeps the stable name
        # BENCH_micro.json rather than BENCH_${name}.json.
        micro_args=()
        if [ "$smoke" -eq 1 ]; then
          micro_args+=(--smoke)
        fi
        rc=0
        python3 scripts/micro_to_stats.py \
          "$stats_dir/raw_${name}.json" "$stats_dir/BENCH_micro.json" \
          ${micro_args[@]+"${micro_args[@]}"} || rc=$?
        rm -f "$stats_dir/raw_${name}.json"
        if [ "$rc" -ne 0 ]; then
          echo "### FAILED: micro_to_stats.py for $name (exit $rc)" >&2
          exit 1
        fi
        ;;
    esac
  fi
done
