// LeanMD mini-app tests: physics invariants (atom conservation, momentum,
// determinism), decomposition structure, load-balance benefit on clustered
// density, and interaction with in-memory checkpointing.

#include <gtest/gtest.h>

#include <cmath>

#include "ft/mem_checkpoint.hpp"
#include "miniapps/leanmd/leanmd.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using leanmd::Params;
using leanmd::Simulation;

using charmtest::Harness;

Params small_params() {
  Params p;
  p.nx = p.ny = p.nz = 3;
  p.atoms_per_cell = 6;
  return p;
}

TEST(LeanMd, DecompositionCounts) {
  Harness h(4);
  Simulation sim(h.rt, small_params());
  EXPECT_EQ(sim.ncells(), 27);
  // 27 cells x 27 stencil / 2 (pairs are unordered) + 27 self-pairs/2 ... :
  // exact count: unique adjacent unordered pairs incl self = 27 + 27*26/2 is
  // wrong in general; just require "many more computes than cells"
  // (over-decomposition, §IV-B-1) and more computes than PEs.
  EXPECT_GT(sim.ncomputes(), sim.ncells());
  EXPECT_GT(sim.ncomputes(), h.rt.npes() * 4);
}

TEST(LeanMd, AtomCountConservedAcrossSteps) {
  Harness h(4);
  Simulation sim(h.rt, small_params());
  const std::size_t n0 = sim.total_atoms();
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(5, Callback::to_function([&](ReductionResult&& r) {
      done = true;
      EXPECT_EQ(static_cast<std::size_t>(r.num(0)), n0);
    }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(sim.total_atoms(), n0);
}

TEST(LeanMd, MomentumApproximatelyConserved) {
  // LJ forces are antisymmetric, so total momentum is invariant.
  Harness h(2);
  Params p = small_params();
  p.dt = 1e-4;
  Simulation sim(h.rt, p);
  const auto m0 = sim.total_momentum();
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(8, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  ASSERT_TRUE(done);
  const auto m1 = sim.total_momentum();
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(m1[static_cast<std::size_t>(d)],
                                          m0[static_cast<std::size_t>(d)], 1e-9);
}

TEST(LeanMd, DeterministicAcrossPeCounts) {
  // The physics must not depend on the PE count — only the virtual timing.
  auto run = [](int npes) {
    Harness h(npes);
    Simulation sim(h.rt, small_params());
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(4, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return sim.kinetic_energy();
  };
  const double e2 = run(2);
  const double e8 = run(8);
  EXPECT_NEAR(e2, e8, std::abs(e2) * 1e-9 + 1e-12);
}

TEST(LeanMd, ClusteredDensityCreatesImbalanceLbFixes) {
  auto run = [](bool with_lb) {
    Harness h(8);
    Params p;
    p.nx = p.ny = p.nz = 4;
    p.atoms_per_cell = 32;
    p.pair_cost = 25e-9;
    p.clustering = 3.0;  // high-x cells ~4x denser => ~16x heavier computes
    p.epsilon = 1e-6;    // quasi-static gas: the density gradient persists
    Simulation sim(h.rt, p);
    if (with_lb) {
      h.rt.lb().set_strategy(lb::make_refine(1.05));
      h.rt.lb().set_period(3);
    }
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(12, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  const double t_nolb = run(false);
  const double t_lb = run(true);
  EXPECT_LT(t_lb, t_nolb * 0.85) << "RefineLB must improve clustered LeanMD";
}

TEST(LeanMd, StrongScalingImprovesStepTime) {
  auto run = [](int npes) {
    Harness h(npes);
    Params p;
    p.nx = p.ny = p.nz = 4;
    p.atoms_per_cell = 10;
    Simulation sim(h.rt, p);
    bool done = false;
    h.rt.on_pe(0, [&] {
      sim.run(3, Callback::to_function([&](ReductionResult&&) { done = true; }));
    });
    h.machine.run();
    EXPECT_TRUE(done);
    return h.machine.max_pe_clock();
  };
  const double t2 = run(2);
  const double t16 = run(16);
  EXPECT_LT(t16, t2 * 0.5) << "8x the PEs should cut virtual time well over 2x";
}

TEST(LeanMd, CheckpointRestartRollsPhysicsBack) {
  Harness h(4);
  Simulation sim(h.rt, small_params());
  ft::MemCheckpointer ckpt(h.rt);
  bool recovered = false;
  double energy_at_ckpt = -1;
  h.rt.on_pe(0, [&] {
    sim.run(3, Callback::to_function([&](ReductionResult&&) {
      energy_at_ckpt = sim.kinetic_energy();
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        sim.run(3, Callback::to_function([&](ReductionResult&&) {
          // Some progress happened; now a node dies.
          EXPECT_NE(sim.kinetic_energy(), energy_at_ckpt);
          ckpt.fail_and_recover(1, Callback::to_function([&](ReductionResult&&) {
            recovered = true;
          }));
        }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_TRUE(recovered);
  EXPECT_NEAR(sim.kinetic_energy(), energy_at_ckpt, std::abs(energy_at_ckpt) * 1e-12)
      << "rollback must restore the checkpointed physics state";
}

class LeanMdSweep : public ::testing::TestWithParam<int> {};

TEST_P(LeanMdSweep, RunsToCompletionOnVariousPeCounts) {
  Harness h(GetParam());
  Params p = small_params();
  p.clustering = 1.0;
  Simulation sim(h.rt, p);
  bool done = false;
  h.rt.on_pe(0, [&] {
    sim.run(3, Callback::to_function([&](ReductionResult&&) { done = true; }));
  });
  h.machine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(h.rt.outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, LeanMdSweep, ::testing::Values(1, 3, 7, 16));

}  // namespace
