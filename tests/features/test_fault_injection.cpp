// Deterministic fault injection + resilience harness.
//
// A small bulk-synchronous app (broadcast work + neighbor exchange + QD step
// boundaries) runs under ft::ResilientDriver with periodic double in-memory
// checkpoints while sim::FaultInjector kills PEs mid-run.  The headline
// assertions:
//   * every randomized failure schedule recovers and finishes,
//   * post-recovery physics is bit-identical to the failure-free run,
//   * the same seed reproduces a byte-identical failure/recovery trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ft/mem_checkpoint.hpp"
#include "ft/resilient_driver.hpp"
#include "runtime/charm.hpp"
#include "sim/fault_injector.hpp"
#include "trace/trace.hpp"

#include "test_util.hpp"

namespace {

using namespace charm;
using charmtest::Harness;

struct StepMsg {
  int step = 0;
  void pup(pup::Er& p) { p | step; }
};

struct ShareMsg {
  double v = 0;
  void pup(pup::Er& p) { p | v; }
};

/// One particle-bundle element: deterministic arithmetic "physics" plus a
/// right-neighbor exchange, so injected failures lose both broadcast and
/// point-to-point messages.
class Atom : public charm::ArrayElement<Atom, std::int32_t> {
 public:
  static int population;  // set by each test before seeding

  std::vector<double> data;
  int steps = 0;

  void init() {
    data.assign(32, 1.0 + 0.25 * static_cast<double>(index()));
  }

  void work(const StepMsg& m) {
    const double ix = static_cast<double>(index());
    for (std::size_t k = 0; k < data.size(); ++k)
      data[k] = data[k] * 1.0000001 + 1e-3 * (ix + 1.0) +
                1e-4 * static_cast<double>(m.step) + 1e-6 * static_cast<double>(k);
    ++steps;
    charm::charge(150e-6);
    ArrayProxy<Atom> peers(collection_id());
    peers[(index() + 1) % population].send<&Atom::share>(ShareMsg{data[0]});
  }

  void share(const ShareMsg& m) {
    data[1] += 1e-6 * m.v;
    charm::charge(2e-6);
  }

  void pup(pup::Er& p) override {
    ArrayElementBase::pup(p);
    p | data;
    p | steps;
  }
};

int Atom::population = 0;

constexpr int kPes = 6;
constexpr int kElems = 12;
constexpr int kSteps = 10;
constexpr int kCkptPeriod = 3;

/// Checkpointer tuned for tests: short detection so sweeps stay fast.
ft::MemCkptParams test_ckpt_params() {
  ft::MemCkptParams p;
  p.detect_delay = 1e-3;
  return p;
}

struct RunResult {
  bool finished = false;
  int failures = 0;
  int recoveries = 0;
  int replayed_steps = 0;
  int ckpt_aborted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t redirected = 0;
  std::string fault_log;
  std::string recovery_log;
  std::vector<double> physics;  ///< per-element data + step counters
  double end_time = 0;
};

/// Runs the mini-app to completion, optionally under an injected failure
/// schedule, and fingerprints the surviving element state.
RunResult run_mini(const sim::FaultConfig* fcfg,
                   trace::Tracer* tracer = nullptr,
                   ft::MemCkptParams mp = test_ckpt_params()) {
  Harness h(kPes);
  if (tracer != nullptr) h.machine.set_tracer(tracer);
  Atom::population = kElems;
  auto arr = ArrayProxy<Atom>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kPes);

  sim::FaultInjector fi;
  if (fcfg != nullptr) {
    fi.configure(*fcfg);
    h.machine.set_fault_injector(&fi);
  }
  ft::MemCheckpointer ckpt(h.rt, mp);
  if (fcfg != nullptr) ckpt.attach_injector(fi);

  ft::ResilientDriver drv(
      h.rt, ckpt,
      [&](int step, std::function<void()> boundary) {
        arr.broadcast<&Atom::work>(StepMsg{step});
        h.rt.start_quiescence(Callback::to_function(
            [boundary = std::move(boundary)](ReductionResult&&) { boundary(); }));
      },
      kSteps, kCkptPeriod);

  RunResult r;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Atom::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      drv.start(Callback::to_function([&](ReductionResult&&) {
        r.finished = true;
        // The application has exited; no further failures are injected.
        h.machine.set_fault_injector(nullptr);
      }));
    }));
  });
  h.machine.run();

  r.failures = fi.failures_injected();
  r.recoveries = ckpt.recoveries_completed();
  r.replayed_steps = drv.steps_replayed();
  r.ckpt_aborted = ckpt.checkpoints_aborted();
  r.dropped = h.machine.messages_dropped();
  r.redirected = h.machine.messages_redirected();
  r.fault_log = fi.format_log();
  r.recovery_log = ckpt.format_recovery_log();
  r.end_time = h.machine.time();
  for (int i = 0; i < kElems; ++i) {
    int pe = -1;
    Atom* a = h.find<Atom>(arr.id(), i, &pe);
    if (a == nullptr) continue;  // caller asserts on fingerprint length
    r.physics.insert(r.physics.end(), a->data.begin(), a->data.end());
    r.physics.push_back(static_cast<double>(a->steps));
  }
  return r;
}

const RunResult& baseline() {
  static const RunResult r = run_mini(nullptr);
  return r;
}

// ---- schedule mechanics ------------------------------------------------------

TEST(FixedSchedule, FiresAtExactVirtualTime) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.fixed = {{2e-3, 2}};
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.failures, 1);
  // The injection lands between handler executions at the exact configured
  // virtual timestamp — no quantization to event times.
  EXPECT_NE(r.fault_log.find("t=0.002", 0), std::string::npos) << r.fault_log;
  EXPECT_NE(r.fault_log.find("pe=2"), std::string::npos) << r.fault_log;
  EXPECT_EQ(r.recoveries, 1);
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(FixedSchedule, QuarantineDropsQueuedAndInflightMessages) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.fixed = {{1.5e-3, 1}};
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.failures, 1);
  // Something must have been addressed at the dead PE during the detection
  // window (QD waves, step traffic) and been dropped, not executed.
  EXPECT_GT(r.dropped, 0u);
  EXPECT_EQ(r.redirected, 0u);  // default policy is kDrop
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(FixedSchedule, RedirectPolicyReroutesToLivePes) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.policy = sim::DropPolicy::kRedirect;
  cfg.fixed = {{1.5e-3, 4}};
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.failures, 1);
  EXPECT_GT(r.redirected, 0u);
  // Redirected runtime messages are still suppressed for the dead target at
  // the runtime layer, so recovery must produce the same physics.
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(FixedSchedule, RandomVictimIsSeedDeterministic) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.fixed = {{1.5e-3, -1}};  // -1: seeded random victim
  cfg.seed = 99;
  RunResult a = run_mini(&cfg);
  RunResult b = run_mini(&cfg);
  ASSERT_EQ(a.failures, 1);
  EXPECT_EQ(a.fault_log, b.fault_log);
}

// ---- multi-failure behaviour -------------------------------------------------

TEST(MultiFailure, BurstCoalescesIntoOneRecovery) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.max_failures = 2;
  // Two failures inside one detection window; victims are not buddies.
  cfg.fixed = {{1.5e-3, 1}, {1.6e-3, 3}};
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 2);
  EXPECT_EQ(r.recoveries, 1) << r.recovery_log;
  EXPECT_NE(r.recovery_log.find("victims=[1,3]"), std::string::npos) << r.recovery_log;
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(MultiFailure, SequentialBuddyVictimRecoversViaReReplication) {
  // PE 3 is the buddy holding PE 2's checkpoint.  Failing 2, recovering, and
  // then failing 3 must work: the recovery re-replicates the copies that died
  // with PE 2 (and the ones PE 3 will lose are re-hosted after its recovery).
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.max_failures = 2;
  cfg.fixed = {{1.5e-3, 2}, {4e-3, 3}};  // second failure well after recovery
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 2);
  EXPECT_EQ(r.recoveries, 2) << r.recovery_log;
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(MultiFailure, AdjacentVictimsInOneBurstAreUnrecoverable) {
  // PE 3 holds the only surviving copy of PE 2's state; losing both before
  // recovery completes defeats double checkpointing.  This must surface as a
  // clean error, not a hang or UB.
  Harness h(kPes);
  Atom::population = kElems;
  auto arr = ArrayProxy<Atom>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kPes);
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.max_failures = 2;
  cfg.fixed = {{1e-3, 2}, {1.05e-3, 3}};
  sim::FaultInjector fi(cfg);
  h.machine.set_fault_injector(&fi);
  ft::MemCheckpointer ckpt(h.rt, test_ckpt_params());
  ckpt.attach_injector(fi);
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Atom::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        // Keep the machine busy past both failure times.
        for (int s = 1; s <= kSteps; ++s) arr.broadcast<&Atom::work>(StepMsg{s});
      }));
    }));
  });
  EXPECT_THROW(h.machine.run(), std::runtime_error);
  EXPECT_EQ(fi.failures_injected(), 2);
}

TEST(MultiFailure, FailureWithZeroCheckpointsIsCleanError) {
  Harness h(kPes);
  Atom::population = kElems;
  auto arr = ArrayProxy<Atom>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kPes);
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.fixed = {{1e-4, 1}};
  sim::FaultInjector fi(cfg);
  h.machine.set_fault_injector(&fi);
  ft::MemCheckpointer ckpt(h.rt, test_ckpt_params());
  ckpt.attach_injector(fi);
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Atom::init>();
    for (int s = 1; s <= kSteps; ++s) arr.broadcast<&Atom::work>(StepMsg{s});
  });
  EXPECT_THROW(h.machine.run(), std::logic_error);
}

TEST(MultiFailure, CheckpointDuringPendingRecoveryThrows) {
  Harness h(kPes);
  Atom::population = kElems;
  auto arr = ArrayProxy<Atom>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i % kPes);
  ft::MemCheckpointer ckpt(h.rt, test_ckpt_params());
  bool checked = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Atom::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        ckpt.fail_and_recover(1, Callback::ignore());
        EXPECT_TRUE(ckpt.recovery_pending());
        EXPECT_THROW(ckpt.checkpoint(Callback::ignore()), std::logic_error);
        checked = true;
      }));
    }));
  });
  h.machine.run();
  EXPECT_TRUE(checked);
}

// ---- nemesis mode ------------------------------------------------------------

TEST(Nemesis, TargetsBusiestPe) {
  // Skew the element placement so PE 4 does most of the work; the nemesis
  // victim choice (most accumulated busy time, then longest ready queue) must
  // pick it deterministically.
  Harness h(kPes);
  Atom::population = kElems;
  auto arr = ArrayProxy<Atom>::create(h.rt);
  for (int i = 0; i < kElems; ++i) arr.seed(i, i < 7 ? 4 : i % 4);
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kNemesis;
  cfg.mtbf = 1e-3;
  cfg.start_after = 1e-3;
  sim::FaultInjector fi(cfg);
  h.machine.set_fault_injector(&fi);
  ft::MemCheckpointer ckpt(h.rt, test_ckpt_params());
  ckpt.attach_injector(fi);
  bool done = false;
  h.rt.on_pe(0, [&] {
    arr.broadcast<&Atom::init>();
    h.rt.start_quiescence(Callback::to_function([&](ReductionResult&&) {
      ckpt.checkpoint(Callback::to_function([&](ReductionResult&&) {
        for (int s = 1; s <= 3 * kSteps; ++s) arr.broadcast<&Atom::work>(StepMsg{s});
        h.rt.start_quiescence(
            Callback::to_function([&](ReductionResult&&) { done = true; }));
      }));
    }));
  });
  h.machine.run();
  ASSERT_EQ(fi.failures_injected(), 1);
  EXPECT_EQ(fi.log()[0].pe, 4) << fi.format_log();
  EXPECT_TRUE(done);
}

TEST(Nemesis, StrikesMidCheckpointAndAbortsIt) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kNemesis;
  cfg.mtbf = 0;  // no background stream: hooks only
  cfg.strike_mid_checkpoint = true;
  cfg.strike_delay = 5e-6;
  cfg.start_after = 5e-4;  // skip the initial checkpoint at t~0
  RunResult r = run_mini(&cfg);
  ASSERT_TRUE(r.finished);
  ASSERT_EQ(r.failures, 1);
  // The staged checkpoint was discarded and the previous commit restored.
  EXPECT_EQ(r.ckpt_aborted, 1);
  EXPECT_EQ(r.recoveries, 1);
  EXPECT_GT(r.replayed_steps, 0);
  EXPECT_EQ(r.physics, baseline().physics);
}

TEST(Nemesis, LbHookArmsDelayedStrike) {
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kNemesis;
  cfg.strike_mid_lb = true;
  cfg.strike_delay = 2e-6;
  sim::FaultInjector fi(cfg);
  EXPECT_FALSE(fi.armed());
  fi.notify_lb_begin(1e-3);
  ASSERT_TRUE(fi.armed());
  EXPECT_DOUBLE_EQ(fi.next_time(), 1e-3 + 2e-6);
  // The checkpoint hook must not arm when only the LB strike is enabled.
  sim::FaultInjector fi2(cfg);
  fi2.notify_checkpoint_begin(1e-3);
  EXPECT_FALSE(fi2.armed());
}

// ---- trace integration -------------------------------------------------------

TEST(FaultTrace, FailureAndRestorePhaseSpansEmitted) {
  trace::Tracer tracer;
  sim::FaultConfig cfg;
  cfg.mode = sim::FaultMode::kFixed;
  cfg.fixed = {{1.5e-3, 2}};
  RunResult r = run_mini(&cfg, &tracer);
  ASSERT_TRUE(r.finished);
  int failure_spans = 0, restore_spans = 0, ckpt_spans = 0;
  for (const trace::Event& e : tracer.events()) {
    if (e.kind != trace::Kind::kPhase) continue;
    if (e.phase == trace::Phase::kFailure) {
      ++failure_spans;
      EXPECT_EQ(e.pe, 2);
      EXPECT_DOUBLE_EQ(e.begin, 1.5e-3);
    }
    if (e.phase == trace::Phase::kRestore) ++restore_spans;
    if (e.phase == trace::Phase::kCheckpoint) ++ckpt_spans;
  }
  EXPECT_EQ(failure_spans, 1);
  EXPECT_EQ(restore_spans, 1);
  EXPECT_GT(ckpt_spans, 0);
}

// ---- the resilience sweep ----------------------------------------------------

// Randomized MTBF schedules over many seeds.  Every run must recover from
// every injected failure, finish all steps, and end bit-identical to the
// failure-free run; the same seed must reproduce the identical failure and
// recovery traces byte for byte.
TEST(ResilienceSweep, RandomizedFailureSchedulesRecoverBitIdentical) {
  constexpr int kSeeds = 24;
  const std::vector<double>& clean = baseline().physics;
  ASSERT_EQ(clean.size(), static_cast<std::size_t>(kElems * 33));

  int total_failures = 0;
  int runs_with_failures = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    sim::FaultConfig cfg;
    cfg.mode = sim::FaultMode::kMtbf;
    cfg.mtbf = 1.2e-3;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.max_failures = 3;
    cfg.start_after = 1e-3;  // the initial checkpoint commits well before this
    cfg.min_gap = 5e-3;      // recovery + replay headroom between failures
    RunResult a = run_mini(&cfg);
    ASSERT_TRUE(a.finished) << "seed " << seed << " did not complete";
    ASSERT_EQ(a.physics, clean) << "seed " << seed << " diverged after recovery";

    // Same seed, fresh machine: the entire failure timeline must replay
    // byte-identically.
    RunResult b = run_mini(&cfg);
    ASSERT_TRUE(b.finished);
    EXPECT_EQ(a.fault_log, b.fault_log) << "seed " << seed;
    EXPECT_EQ(a.recovery_log, b.recovery_log) << "seed " << seed;
    EXPECT_EQ(a.end_time, b.end_time) << "seed " << seed;

    total_failures += a.failures;
    if (a.failures > 0) {
      ++runs_with_failures;
      EXPECT_GT(a.recoveries, 0) << "seed " << seed;
    }
  }
  // The sweep must actually exercise the failure path, not vacuously pass.
  EXPECT_GE(total_failures, (2 * kSeeds) / 3) << "MTBF too long for the run length?";
  EXPECT_GE(runs_with_failures, kSeeds / 2);
}

// Nemesis sweep: adversarial timing (mid-checkpoint strikes) across seeds.
TEST(ResilienceSweep, NemesisMidCheckpointSchedulesRecover) {
  const std::vector<double>& clean = baseline().physics;
  for (int seed = 1; seed <= 6; ++seed) {
    sim::FaultConfig cfg;
    cfg.mode = sim::FaultMode::kNemesis;
    cfg.mtbf = 0;
    cfg.strike_mid_checkpoint = true;
    cfg.strike_delay = 1e-6 * static_cast<double>(seed);  // vary the timing
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.start_after = 5e-4;
    cfg.max_failures = 2;
    cfg.min_gap = 5e-3;
    RunResult r = run_mini(&cfg);
    ASSERT_TRUE(r.finished) << "seed " << seed;
    ASSERT_GE(r.failures, 1) << "seed " << seed;
    ASSERT_EQ(r.physics, clean) << "seed " << seed;
  }
}

}  // namespace
