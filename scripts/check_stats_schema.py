#!/usr/bin/env python3
"""Validates the JSON files under bench_stats/ (the --stats bench outputs).

Two schemas, dispatched on the "schema" field:

"charmlike-stats" (figure/ablation benches; byte-deterministic virtual-time
analytics).  Checks three layers and exits nonzero on the first violation:
  1. schema identity: name "charmlike-stats", version 1, and the exact
     top-level key order the exporter emits (so accidental schema drift
     fails CI instead of silently breaking downstream consumers);
  2. shape: every section has the documented keys with sane types;
  3. accounting invariants: per-PE busy/exec sums match totals, comm-matrix
     row sums match per-PE send counters, histogram totals match the send
     count, phases tile [0, makespan], and critical path <= makespan.

"charmlike-microbench" (scripts/micro_to_stats.py output for the host
wall-clock micro suite).  Values are machine-dependent, so only identity and
shape are checked: exact top-level key order, version 1, a non-empty
benchmark list with positive iteration counts and nonnegative times.

Both forms must be a single line ending '}' + newline.

Stdlib only; usage: check_stats_schema.py FILE...
"""
import json
import math
import sys

SCHEMA = "charmlike-stats"
MICRO_SCHEMA = "charmlike-microbench"
VERSION = 1

MICRO_TOP_KEYS = ["schema", "version", "bench", "smoke", "context", "benchmarks"]
MICRO_CTX_KEYS = ["num_cpus", "mhz_per_cpu", "build_type"]

TOP_KEYS = [
    "schema", "version", "bench", "smoke", "npes", "makespan", "events",
    "series", "notes", "totals", "pes", "entries", "comm", "imbalance",
    "phases", "critical_path",
]
# The taskbench bench adds an overhead-surface section between "notes" and
# "totals", and the collectives bench a tree-sweep section in the same slot
# (after taskbench when both appear); every other bench keeps the original
# key list bit-for-bit.
TOP_KEYS_TASKBENCH = TOP_KEYS[:9] + ["taskbench"] + TOP_KEYS[9:]
TASKBENCH_CELL_KEYS = [
    "pattern", "transport", "npes", "width", "steps", "grain",
    "payload_doubles", "fanout", "seed", "tasks", "edges", "msgs", "bytes",
    "makespan", "ideal", "efficiency", "overhead_per_task", "tram_aggregation",
]
TASKBENCH_PATTERNS = {"stencil_1d", "fft", "tree", "sweep", "random"}
COLLECTIVES_CELL_KEYS = [
    "topology", "arity", "npes", "elements", "rounds", "payload_doubles",
    "msgs", "bytes", "partial_sends", "makespan", "time_per_round",
]
# The live-introspection sections (--metrics runs, DESIGN.md §11) slot into
# the same optional block, after any taskbench/collectives sections.
TIMESERIES_KEYS = [
    "t", "busy_max", "busy_avg", "lambda", "busy", "exec", "execs", "msgs",
    "bytes", "coll_msgs", "coll_bytes", "msg_rate", "byte_rate", "ready",
    "ready_hwm", "evq", "evq_hwm",
]
JOURNAL_KEYS = ["t", "kind", "aux", "value"]
JOURNAL_KINDS = {"lb_round", "checkpoint", "restore", "failure", "shrink",
                 "expand"}
PE_KEYS = [
    "pe", "busy", "exec", "overhead", "idle", "execs", "queue_wait",
    "msgs_sent", "bytes_sent", "msgs_recv", "bytes_recv",
]
ENTRY_KEYS = [
    "pe", "col", "ep", "name", "calls", "busy", "exec", "overhead",
    "grain_min", "grain_avg", "grain_max",
]
COMM_KEYS = [
    "sends", "bytes", "hops", "latency_total", "latency_max",
    "queue_wait_total", "size_log2", "hops_log2", "entry_ns_log2", "cells",
]
IMBALANCE_KEYS = ["busy_max", "busy_avg", "sigma", "ratio"]
PHASE_KEYS = ["name", "t0", "t1", "busy", "exec", "idle", "imbalance"]
CP_KEYS = ["length", "work", "comm", "nodes", "edges_matched", "makespan_ratio"]


class Fail(Exception):
    pass


def expect(cond, msg):
    if not cond:
        raise Fail(msg)


def expect_keys(obj, keys, where):
    expect(isinstance(obj, dict), f"{where}: expected an object")
    expect(list(obj.keys()) == keys,
           f"{where}: key drift; expected {keys}, got {list(obj.keys())}")


def expect_num(obj, key, where, minimum=None):
    v = obj.get(key)
    expect(isinstance(v, (int, float)) and not isinstance(v, bool),
           f"{where}.{key}: expected a number, got {v!r}")
    if minimum is not None:
        expect(v >= minimum, f"{where}.{key}: {v} < {minimum}")
    return v


def close(a, b, tol=1e-9):
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


def check_byte_form(raw):
    # Byte-level canonical form: catches accidental pretty-printing or
    # trailing whitespace in either exporter.
    expect(raw.endswith(b"}\n"), "file must end with '}' + newline")
    expect(b"\n" not in raw[:-1], "body must be a single line")


def check_micro(doc, raw):
    expect_keys(doc, MICRO_TOP_KEYS, "top level")
    expect(doc["version"] == VERSION, f"version: {doc['version']} != {VERSION}")
    expect(isinstance(doc["bench"], str) and doc["bench"], "bench: empty")
    expect(isinstance(doc["smoke"], bool), "smoke: expected a bool")
    expect_keys(doc["context"], MICRO_CTX_KEYS, "context")
    benchmarks = doc["benchmarks"]
    expect(isinstance(benchmarks, list) and benchmarks, "benchmarks: empty")
    for i, b in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        expect(isinstance(b, dict), f"{where}: expected an object")
        expect(isinstance(b.get("name"), str) and b["name"], f"{where}.name: empty")
        expect_num(b, "iterations", where, minimum=1)
        expect_num(b, "real_time", where, minimum=0)
        expect_num(b, "cpu_time", where, minimum=0)
        expect(b.get("time_unit") in ("ns", "us", "ms", "s"),
               f"{where}.time_unit: {b.get('time_unit')!r}")
        if "counters" in b:
            expect(isinstance(b["counters"], dict) and
                   all(isinstance(v, (int, float)) and not isinstance(v, bool)
                       for v in b["counters"].values()),
                   f"{where}.counters: expected numeric values")
            for k, v in b["counters"].items():
                if k.startswith("payload_pool_"):
                    expect(v >= 0 and float(v).is_integer(),
                           f"{where}.counters.{k}: expected a nonnegative "
                           f"integer, got {v!r}")
            # Footprint gate (DESIGN.md §12).  The mem_bytes_* counters are
            # structural byte accounting over the runtime's own tables —
            # deterministic across hosts — so hard ceilings are safe here: a
            # change that re-densifies per-PE state (a dense Pe is ~100 B, a
            # dense PeLocal ~250 B per configured PE) lands orders of
            # magnitude past them and fails the schema check outright.
            # mem_peak_rss_kb is host-dependent: presence/positivity only.
            c = b["counters"]
            if "mem_bytes_per_idle_pe" in c:
                expect(0 <= c["mem_bytes_per_idle_pe"] <= 16,
                       f"{where}.counters.mem_bytes_per_idle_pe: "
                       f"{c['mem_bytes_per_idle_pe']!r} outside [0, 16] — "
                       f"configured-but-untouched PEs are no longer ~free")
            if "mem_bytes_per_touched_pe" in c:
                expect(1 <= c["mem_bytes_per_touched_pe"] <= 65536,
                       f"{where}.counters.mem_bytes_per_touched_pe: "
                       f"{c['mem_bytes_per_touched_pe']!r} outside "
                       f"[1, 65536]")
            if "mem_peak_rss_kb" in c:
                expect(c["mem_peak_rss_kb"] > 0,
                       f"{where}.counters.mem_peak_rss_kb: expected > 0")
    check_byte_form(raw)


def check_taskbench_cells(cells):
    expect(isinstance(cells, list) and cells, "taskbench: expected non-empty list")
    seen_ids = set()
    for i, c in enumerate(cells):
        where = f"taskbench[{i}]"
        expect_keys(c, TASKBENCH_CELL_KEYS, where)
        expect(c["pattern"] in TASKBENCH_PATTERNS,
               f"{where}.pattern: {c['pattern']!r}")
        expect(c["transport"] in ("point", "tram"),
               f"{where}.transport: {c['transport']!r}")
        npes = expect_num(c, "npes", where, minimum=1)
        width = expect_num(c, "width", where, minimum=1)
        steps = expect_num(c, "steps", where, minimum=1)
        grain = expect_num(c, "grain", where, minimum=0)
        expect_num(c, "payload_doubles", where, minimum=0)
        expect_num(c, "fanout", where, minimum=1)
        expect_num(c, "seed", where, minimum=0)
        tasks = expect_num(c, "tasks", where, minimum=1)
        edges = expect_num(c, "edges", where, minimum=0)
        expect_num(c, "msgs", where, minimum=1)
        expect_num(c, "bytes", where, minimum=1)
        makespan = expect_num(c, "makespan", where, minimum=0)
        ideal = expect_num(c, "ideal", where, minimum=0)
        expect(tasks == width * steps,
               f"{where}: tasks {tasks} != width*steps {width * steps}")
        expect(edges <= tasks * max(3, c["fanout"] + 1),
               f"{where}: edge count {edges} implausible for the graph")
        expect(close(ideal, grain * steps * math.ceil(width / npes), tol=1e-6),
               f"{where}: ideal {ideal} != grain*steps*ceil(width/npes)")
        expect(makespan >= ideal - 1e-12,
               f"{where}: makespan {makespan} < ideal {ideal}")
        if makespan > 0:
            expect(close(c["efficiency"], ideal / makespan, tol=1e-6),
                   f"{where}: efficiency inconsistent with ideal/makespan")
        expect(close(c["overhead_per_task"],
                     (makespan - ideal) * npes / tasks, tol=1e-6),
               f"{where}: overhead_per_task inconsistent")
        expect(c["overhead_per_task"] >= -1e-12,
               f"{where}: negative overhead_per_task")
        expect((c["transport"] == "tram") == (c["tram_aggregation"] > 0),
               f"{where}: tram_aggregation {c['tram_aggregation']} does not "
               f"match transport {c['transport']!r}")
        ident = (c["pattern"], c["transport"], npes, width, steps, grain,
                 c["payload_doubles"], c["fanout"], c["seed"])
        expect(ident not in seen_ids, f"{where}: duplicate cell {ident}")
        seen_ids.add(ident)


def check_collectives_cells(cells):
    expect(isinstance(cells, list) and cells,
           "collectives: expected non-empty list")
    seen_ids = set()
    for i, c in enumerate(cells):
        where = f"collectives[{i}]"
        expect_keys(c, COLLECTIVES_CELL_KEYS, where)
        expect(c["topology"] in ("flat", "tree"),
               f"{where}.topology: {c['topology']!r}")
        arity = expect_num(c, "arity", where, minimum=0)
        expect((c["topology"] == "tree") == (arity >= 2),
               f"{where}: arity {arity} does not match topology "
               f"{c['topology']!r} (flat => 0, tree => >= 2)")
        npes = expect_num(c, "npes", where, minimum=1)
        expect_num(c, "elements", where, minimum=1)
        rounds = expect_num(c, "rounds", where, minimum=1)
        expect_num(c, "payload_doubles", where, minimum=0)
        expect_num(c, "msgs", where, minimum=1)
        expect_num(c, "bytes", where, minimum=1)
        partials = expect_num(c, "partial_sends", where, minimum=0)
        if c["topology"] == "flat" or npes == 1:
            expect(partials == 0,
                   f"{where}: partial_sends {partials} under flat topology")
        else:
            expect(partials >= rounds,
                   f"{where}: tree topology with {partials} partial_sends "
                   f"over {rounds} rounds")
        makespan = expect_num(c, "makespan", where, minimum=0)
        expect(makespan > 0, f"{where}: makespan must be positive")
        tpr = expect_num(c, "time_per_round", where, minimum=0)
        expect(close(tpr, makespan / rounds, tol=1e-6),
               f"{where}: time_per_round {tpr} != makespan/rounds")
        ident = (c["topology"], arity, npes, c["elements"], rounds,
                 c["payload_doubles"])
        expect(ident not in seen_ids, f"{where}: duplicate cell {ident}")
        seen_ids.add(ident)


def check_metrics(doc):
    interval = expect_num(doc, "metrics_interval", "top level")
    expect(interval > 0, f"metrics_interval: {interval} not positive")
    samples = doc["timeseries"]
    expect(isinstance(samples, list), "timeseries: expected a list")
    prev = None
    for i, s in enumerate(samples):
        where = f"timeseries[{i}]"
        expect_keys(s, TIMESERIES_KEYS, where)
        t = expect_num(s, "t", where, minimum=0)
        # Sample times are exact multiples of the interval, hence strictly
        # increasing; allow FP slack on the multiple itself.
        expect(close(t, interval * (i + 1), tol=1e-9),
               f"{where}.t: {t} != interval*{i + 1}")
        if prev is not None:
            expect(t > prev["t"], f"{where}.t: not strictly increasing")
        busy_max = expect_num(s, "busy_max", where, minimum=0)
        busy_avg = expect_num(s, "busy_avg", where, minimum=0)
        lam = expect_num(s, "lambda", where, minimum=0)
        expect(busy_max >= busy_avg - 1e-12, f"{where}: busy_max < busy_avg")
        expect(lam == 0 or lam >= 1 - 1e-9,
               f"{where}.lambda: {lam} (must be 0 or >= 1)")
        if busy_avg > 0:
            expect(close(lam, busy_max / busy_avg, tol=1e-9),
                   f"{where}.lambda inconsistent with busy_max/busy_avg")
        # Cumulative counters never decrease.
        for key in ("busy", "exec", "execs", "msgs", "bytes", "coll_msgs",
                    "coll_bytes"):
            v = expect_num(s, key, where, minimum=0)
            if prev is not None:
                expect(v >= prev[key],
                       f"{where}.{key}: cumulative counter decreased")
        expect(s["coll_msgs"] <= s["msgs"], f"{where}: coll_msgs > msgs")
        expect(s["coll_bytes"] <= s["bytes"], f"{where}: coll_bytes > bytes")
        # Rates are the window deltas over the interval.
        prev_msgs = prev["msgs"] if prev is not None else 0
        prev_bytes = prev["bytes"] if prev is not None else 0
        expect(close(s["msg_rate"], (s["msgs"] - prev_msgs) / interval,
                     tol=1e-9),
               f"{where}.msg_rate inconsistent with the msgs window delta")
        expect(close(s["byte_rate"], (s["bytes"] - prev_bytes) / interval,
                     tol=1e-9),
               f"{where}.byte_rate inconsistent with the bytes window delta")
        # Watermarks dominate the instantaneous depths at the boundary.
        ready = expect_num(s, "ready", where, minimum=0)
        ready_hwm = expect_num(s, "ready_hwm", where, minimum=0)
        evq = expect_num(s, "evq", where, minimum=0)
        evq_hwm = expect_num(s, "evq_hwm", where, minimum=0)
        expect(ready_hwm >= ready, f"{where}: ready_hwm < ready")
        expect(evq_hwm >= evq, f"{where}: evq_hwm < evq")
        prev = s
    journal = doc["journal"]
    expect(isinstance(journal, list), "journal: expected a list")
    prev_t = None
    for i, e in enumerate(journal):
        where = f"journal[{i}]"
        expect_keys(e, JOURNAL_KEYS, where)
        t = expect_num(e, "t", where, minimum=0)
        if prev_t is not None:
            expect(t >= prev_t, f"{where}.t: journal out of order")
        prev_t = t
        expect(e["kind"] in JOURNAL_KINDS, f"{where}.kind: {e['kind']!r}")
        expect_num(e, "aux", where)
        expect_num(e, "value", where)


def check(path):
    with open(path, "rb") as f:
        raw = f.read()
    doc = json.loads(raw, object_pairs_hook=lambda ps: dict_ordered(ps, path))

    expect(isinstance(doc, dict), "top level: expected an object")
    if doc.get("schema") == MICRO_SCHEMA:
        check_micro(doc, raw)
        return

    has_taskbench = "taskbench" in doc
    has_collectives = "collectives" in doc
    has_metrics = "timeseries" in doc
    top_keys = TOP_KEYS[:9]
    if has_taskbench:
        top_keys = top_keys + ["taskbench"]
    if has_collectives:
        top_keys = top_keys + ["collectives"]
    if has_metrics:
        top_keys = top_keys + ["metrics_interval", "timeseries", "journal"]
    top_keys = top_keys + TOP_KEYS[9:]
    expect_keys(doc, top_keys, "top level")
    expect(doc["schema"] == SCHEMA, f"schema: {doc['schema']!r} != {SCHEMA!r}")
    expect(doc["version"] == VERSION, f"version: {doc['version']} != {VERSION}")
    expect(isinstance(doc["bench"], str) and doc["bench"], "bench: empty")
    expect(isinstance(doc["smoke"], bool), "smoke: expected a bool")
    npes = expect_num(doc, "npes", "top level", minimum=1)
    makespan = expect_num(doc, "makespan", "top level", minimum=0)
    expect_num(doc, "events", "top level", minimum=1)

    for i, table in enumerate(doc["series"]):
        where = f"series[{i}]"
        expect_keys(table, ["title", "columns", "rows"], where)
        ncols = len(table["columns"])
        for j, row in enumerate(table["rows"]):
            expect(isinstance(row, list) and
                   all(isinstance(v, (int, float)) for v in row),
                   f"{where}.rows[{j}]: expected a number row")
            if ncols:
                expect(len(row) == ncols,
                       f"{where}.rows[{j}]: {len(row)} values for {ncols} columns")
    expect(all(isinstance(n, str) for n in doc["notes"]), "notes: non-string entry")
    if has_taskbench:
        check_taskbench_cells(doc["taskbench"])
    if has_collectives:
        check_collectives_cells(doc["collectives"])
    if has_metrics:
        check_metrics(doc)

    expect_keys(doc["totals"], ["busy", "exec", "overhead", "execs"], "totals")
    t_busy = expect_num(doc["totals"], "busy", "totals", minimum=0)
    t_exec = expect_num(doc["totals"], "exec", "totals", minimum=0)
    t_execs = expect_num(doc["totals"], "execs", "totals", minimum=1)

    pes = doc["pes"]
    expect(len(pes) == npes, f"pes: {len(pes)} rows for npes={npes}")
    sum_busy = sum_exec = sum_execs = 0
    sent = {}
    for i, p in enumerate(pes):
        where = f"pes[{i}]"
        expect_keys(p, PE_KEYS, where)
        expect(p["pe"] == i, f"{where}: out of order (pe={p['pe']})")
        sum_busy += expect_num(p, "busy", where, minimum=0)
        sum_exec += expect_num(p, "exec", where, minimum=0)
        sum_execs += expect_num(p, "execs", where, minimum=0)
        expect(close(p["overhead"], p["exec"] - p["busy"]),
               f"{where}: overhead != exec - busy")
        sent[i] = (expect_num(p, "msgs_sent", where, minimum=0),
                   expect_num(p, "bytes_sent", where, minimum=0))
    expect(close(sum_busy, t_busy), f"sum(pes.busy)={sum_busy} != totals.busy={t_busy}")
    expect(close(sum_exec, t_exec), f"sum(pes.exec)={sum_exec} != totals.exec={t_exec}")
    expect(sum_execs == t_execs, f"sum(pes.execs)={sum_execs} != totals.execs={t_execs}")

    entry_busy = entry_exec = 0
    for i, e in enumerate(doc["entries"]):
        where = f"entries[{i}]"
        expect_keys(e, ENTRY_KEYS, where)
        expect(isinstance(e["name"], str) and e["name"], f"{where}.name: empty")
        entry_busy += expect_num(e, "busy", where, minimum=0)
        entry_exec += expect_num(e, "exec", where, minimum=0)
        expect(e["grain_min"] <= e["grain_max"] + 1e-12,
               f"{where}: grain_min > grain_max")
    expect(close(entry_busy, t_busy),
           f"sum(entries.busy)={entry_busy} != totals.busy={t_busy}")
    expect(close(entry_exec, t_exec),
           f"sum(entries.exec)={entry_exec} != totals.exec={t_exec}")

    comm = doc["comm"]
    expect_keys(comm, COMM_KEYS, "comm")
    sends = expect_num(comm, "sends", "comm", minimum=0)
    for hist in ("size_log2", "hops_log2"):
        expect(sum(comm[hist]) == sends,
               f"comm.{hist}: bucket total {sum(comm[hist])} != sends {sends}")
    row_msgs = {i: 0 for i in range(int(npes))}
    row_bytes = {i: 0 for i in range(int(npes))}
    cell_bytes = 0
    for i, cell in enumerate(comm["cells"]):
        expect(isinstance(cell, list) and len(cell) == 4,
               f"comm.cells[{i}]: expected [src, dst, msgs, bytes]")
        src, dst, msgs, nbytes = cell
        expect(0 <= src < npes and 0 <= dst < npes,
               f"comm.cells[{i}]: PE out of range")
        row_msgs[src] += msgs
        row_bytes[src] += nbytes
        cell_bytes += nbytes
    for i in range(int(npes)):
        expect(row_msgs[i] == sent[i][0],
               f"comm row {i}: {row_msgs[i]} msgs != pes[{i}].msgs_sent {sent[i][0]}")
        expect(row_bytes[i] == sent[i][1],
               f"comm row {i}: {row_bytes[i]} bytes != pes[{i}].bytes_sent {sent[i][1]}")
    expect(cell_bytes == comm["bytes"],
           f"sum(cells.bytes)={cell_bytes} != comm.bytes={comm['bytes']}")

    expect_keys(doc["imbalance"], IMBALANCE_KEYS, "imbalance")
    phases = doc["phases"]
    expect(len(phases) >= 1, "phases: empty")
    for i, ph in enumerate(phases):
        where = f"phases[{i}]"
        expect_keys(ph, PHASE_KEYS, where)
        expect_keys(ph["imbalance"], IMBALANCE_KEYS, f"{where}.imbalance")
        if i:
            expect(close(ph["t0"], phases[i - 1]["t1"]),
                   f"{where}: gap after previous phase")
    expect(close(phases[0]["t0"], 0), "phases[0].t0 != 0")
    expect(close(phases[-1]["t1"], makespan), "phases[-1].t1 != makespan")

    cp = doc["critical_path"]
    expect_keys(cp, CP_KEYS, "critical_path")
    length = expect_num(cp, "length", "critical_path", minimum=0)
    expect(length <= makespan + 1e-9,
           f"critical_path.length {length} > makespan {makespan}")
    expect(close(cp["work"] + cp["comm"], length),
           "critical_path: work + comm != length")
    if makespan > 0:
        expect(close(cp["makespan_ratio"], length / makespan, tol=1e-6),
               "critical_path.makespan_ratio inconsistent")

    check_byte_form(raw)


def dict_ordered(pairs, path):
    d = {}
    for k, v in pairs:
        if k in d:
            raise Fail(f"duplicate key {k!r}")
        d[k] = v
    return d


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bad = 0
    for path in argv[1:]:
        try:
            check(path)
            print(f"{path}: OK")
        except Fail as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            bad += 1
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            bad += 1
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
