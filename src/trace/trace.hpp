#pragma once
// Projections-style event tracing for the emulated machine (§III of the
// paper; Fig 11's time profiles are produced from exactly this kind of log).
//
// The tracer records per-PE *virtual-time* events:
//   * kExec   — one scheduler-level handler execution span (bytes = message
//               payload that triggered it)
//   * kEntry  — one entry-method invocation span nested inside an exec span
//               (a = collection id, b = entry id); the span covers only the
//               work charged by the method itself
//   * kSend   — a message departure (pe = source, a = destination, b = torus
//               hops; begin = departure, end = arrival at the destination's
//               scheduler queue, so end - begin is the network latency)
//   * kRecv   — queueing delay at the destination (pe = destination,
//               begin = arrival, end = start of service, a = priority)
//   * kIdle   — a gap during which a PE had nothing to execute
//   * kPhase  — a named runtime phase (LB step, checkpoint, restart recovery)
//
// Recording is allocation-free per event on the hot path: events land in a
// reserve-ahead vector grown in large chunks; an optional hard cap turns the
// tracer into a bounded buffer that counts (rather than stores) overflow.
// A Machine with no tracer attached — or a disabled tracer — pays one
// pointer/flag test per hook, and recording never charges virtual time, so
// simulation results are bit-identical with tracing on, off, or absent.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace trace {

enum class Kind : std::uint8_t { kExec, kEntry, kSend, kRecv, kIdle, kPhase };

enum class Phase : std::uint8_t { kLbStep, kCheckpoint, kRestore, kFailure, kCustom };

struct Event {
  Kind kind = Kind::kExec;
  Phase phase = Phase::kCustom;  ///< meaningful for kPhase only
  std::int32_t pe = -1;          ///< PE the event is attributed to
  std::int32_t a = -1;           ///< kind-specific (see header comment)
  std::int32_t b = -1;           ///< kind-specific (see header comment)
  double begin = 0;              ///< virtual seconds
  double end = 0;                ///< virtual seconds
  std::uint64_t bytes = 0;       ///< payload size for exec/send/recv
};

class Tracer {
 public:
  /// `reserve_events` is the initial reserve-ahead allocation; `max_events`
  /// bounds the log (0 = unbounded, growth doubles the reservation).
  explicit Tracer(std::size_t reserve_events = 1 << 16, std::size_t max_events = 0)
      : max_events_(max_events) {
    events_.reserve(max_events ? std::min(reserve_events, max_events) : reserve_events);
  }

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  const std::vector<Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  /// Events that arrived after the cap was hit (0 when unbounded).
  std::uint64_t dropped() const { return dropped_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  // ---- recording (no-ops unless enabled) -----------------------------------

  void record(const Event& e) {
    if (!enabled_) return;
    if (max_events_ != 0 && events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  void exec(int pe, double begin, double end, std::uint64_t bytes) {
    Event e;
    e.kind = Kind::kExec;
    e.pe = pe;
    e.begin = begin;
    e.end = end;
    e.bytes = bytes;
    record(e);
  }

  void entry(int pe, int col, int ep, double begin, double end) {
    Event e;
    e.kind = Kind::kEntry;
    e.pe = pe;
    e.a = col;
    e.b = ep;
    e.begin = begin;
    e.end = end;
    record(e);
  }

  void send(int src, int dst, std::uint64_t bytes, int hops, double depart,
            double arrive) {
    Event e;
    e.kind = Kind::kSend;
    e.pe = src;
    e.a = dst;
    e.b = hops;
    e.begin = depart;
    e.end = arrive;
    e.bytes = bytes;
    record(e);
  }

  void recv(int pe, int priority, std::uint64_t bytes, double arrive,
            double service_start) {
    Event e;
    e.kind = Kind::kRecv;
    e.pe = pe;
    e.a = priority;
    e.begin = arrive;
    e.end = service_start;
    e.bytes = bytes;
    record(e);
  }

  void idle(int pe, double begin, double end) {
    Event e;
    e.kind = Kind::kIdle;
    e.pe = pe;
    e.begin = begin;
    e.end = end;
    record(e);
  }

  void phase_span(Phase ph, int pe, double begin, double end, int aux = -1) {
    Event e;
    e.kind = Kind::kPhase;
    e.phase = ph;
    e.pe = pe;
    e.a = aux;
    e.begin = begin;
    e.end = end;
    record(e);
  }

 private:
  std::vector<Event> events_;
  std::size_t max_events_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
};

}  // namespace trace
