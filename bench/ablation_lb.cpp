// Ablation: the LB strategy suite on one imbalanced workload.
//
// Same clustered LeanMD configuration for every strategy; reports makespan,
// number of migrations, and the post-balance imbalance the runtime measured.
// This is the "which balancer should I use" table the paper's §III-A implies:
// Greedy balances best but migrates everything; Refine preserves locality;
// Hybrid approximates Greedy hierarchically; DistributedLB trades balance
// quality for O(1) decision state per PE.

#include <array>

#include "bench_common.hpp"
#include "lb/load_db.hpp"
#include "miniapps/leanmd/leanmd.hpp"

namespace {

using namespace charm;

struct Outcome {
  double makespan = 0;
  int migrations = 0;
  double final_imbalance = 1.0;
  int rounds = 0;      ///< AtSync rounds completed
  int lb_rounds = 0;   ///< rounds that ran a strategy
  lb::LoadDb::Counters db;  ///< load-database maintenance counters
};

Outcome run_with(const char* which) {
  sim::Machine m(bench::machine_config(16));
  bench::attach_trace(m);
  Runtime rt(m);
  leanmd::Params p;
  p.nx = p.ny = p.nz = 5;
  p.atoms_per_cell = 24;
  p.pair_cost = 25e-9;
  p.clustering = 2.5;
  p.epsilon = 1e-6;
  leanmd::Simulation sim(rt, p);

  const std::string s = which;
  if (s == "Greedy") {
    rt.lb().set_strategy(lb::make_greedy());
  } else if (s == "Refine") {
    rt.lb().set_strategy(lb::make_refine(1.05));
  } else if (s == "Hybrid") {
    rt.lb().set_strategy(lb::make_hybrid());
  } else if (s == "Orb") {
    rt.lb().set_strategy(lb::make_orb());
  } else if (s == "Distributed") {
    rt.lb().use_distributed(true);
  }
  if (s != "NoLB") rt.lb().set_period(4);

  bool done = false;
  rt.on_pe(0, [&] {
    sim.run(bench::cap_steps(12, 5), Callback::to_function([&](ReductionResult&&) {
      done = true;
      rt.exit();
    }));
  });
  m.run();

  Outcome out;
  out.makespan = m.max_pe_clock();
  for (const auto& r : rt.lb().history()) {
    out.migrations += r.migrations;
    if (r.avg_load > 0) out.final_imbalance = r.max_load / r.avg_load;
  }
  out.rounds = rt.lb().rounds_completed();
  out.lb_rounds = rt.lb().lb_invocations();
  out.db = rt.lb().db_counters();
  if (!done) std::printf("   WARNING: %s run did not complete\n", which);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::parse_args(argc, argv) != 0) return 1;
  bench::header("Ablation", "LB strategies on clustered LeanMD (16 PEs, 125 cells)");
  const std::array<const char*, 6> strategies{"NoLB",   "Greedy", "Refine",
                                              "Hybrid", "Orb",    "Distributed"};
  std::array<Outcome, strategies.size()> outcomes;
  std::printf("%16s%16s%16s%16s\n", "strategy", "makespan_s", "migrations", "final_imb");
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const Outcome o = run_with(strategies[i]);
    std::printf("%16s%16.4f%16d%16.3f\n", strategies[i], o.makespan, o.migrations,
                o.final_imbalance);
    outcomes[i] = o;
  }
  bench::note("expected: every strategy beats NoLB; Refine moves far fewer chares than Greedy;");
  bench::note("Distributed lands between Refine and Greedy with no central state");

  // Incremental decision-loop ablation (DESIGN.md §13): how much database
  // maintenance each strategy's rounds actually did.  Every value is an
  // integer event count from the virtual-time run, so this table is
  // byte-stable across hosts and gated by the CI fig-regen cmp.
  bench::header("Ablation", "lb_decision: incremental load-db work per strategy (integer counters)");
  bench::columns({"strategy", "rounds", "lb_rounds", "snapshots", "rebuilds", "dirty_reads",
                  "patched", "merge_fix", "full_sorts", "migrations"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const Outcome& o = outcomes[i];
    bench::row({static_cast<double>(i), static_cast<double>(o.rounds),
                static_cast<double>(o.lb_rounds), static_cast<double>(o.db.snapshots),
                static_cast<double>(o.db.structural_rebuilds),
                static_cast<double>(o.db.dirty_flushed),
                static_cast<double>(o.db.patched_copies),
                static_cast<double>(o.db.index_merge_repairs),
                static_cast<double>(o.db.index_full_sorts),
                static_cast<double>(o.migrations)});
  }
  bench::note("strategy: 0=NoLB 1=Greedy 2=Refine 3=Hybrid 4=Orb 5=Distributed");
  bench::note("dirty_reads is slot re-reads across all snapshots, not chares*rounds:");
  bench::note("steady chares are never re-read, and patched snapshots re-copy only them");
  return bench::finish();
}
