// Scalable location management (§II-D of the paper): home PEs, location
// caches, forwarding, in-transit buffering, and the migration protocol.
//
// Every element has a home PE (hash of its index modulo active PEs) that holds
// the authoritative location record.  Senders use their PE-local cache and
// fall back to the home; the home forwards misses and pushes cache updates to
// the original sender.  During a migration the home buffers traffic between
// the "departed" and "arrived" control messages; a per-element epoch makes the
// protocol robust to control-message reordering.

#include <cassert>
#include <utility>

#include "lb/manager.hpp"
#include "runtime/runtime.hpp"

namespace charm {

void Runtime::handle_point_miss(Envelope env, int pe) {
  Collection& c = collection(env.col);
  if (c.is_group) {  // message to a dead group PE: drop
    release_payload(std::move(env.payload));
    return;
  }

  const int h = home_pe(env.idx);
  if (pe != h) {
    // Stale cache or post-migration straggler: bounce via the home.
    ++forwards_;
    ++env.fwd_hops;
    launch_envelope(std::move(env), h);
    return;
  }

  HomeRecord& r = c.local(pe).home[env.idx];
  if (r.location == kInvalidPe || r.in_transit || r.location == pe) {
    // Element not yet created here, or mid-migration: park the message.  It
    // is re-launched (and re-counted) when the element lands.
    r.buffered.push_back(std::move(env));
    return;
  }

  const int loc = r.location;
  ++forwards_;
  ++env.fwd_hops;
  if (env.src_pe >= 0 && env.src_pe != pe && env.src_pe != loc) {
    // Teach the sender where the element lives now.
    const int src = env.src_pe;
    const CollectionId col = env.col;
    const ObjIndex ix = env.idx;
    send_control(src, 16, [this, col, ix, loc, src] {
      collection(col).local(src).loc_cache[ix] = loc;
    });
  }
  launch_envelope(std::move(env), loc);
}

void Runtime::home_departed(CollectionId col, ObjIndex idx, std::uint32_t epoch) {
  const int pe = machine_.current_pe();
  HomeRecord& r = collection(col).local(pe).home[idx];
  if (epoch > r.arrived_epoch) r.in_transit = true;
}

void Runtime::home_arrived(CollectionId col, ObjIndex idx, int loc, std::uint32_t epoch) {
  const int pe = machine_.current_pe();
  HomeRecord& r = collection(col).local(pe).home[idx];
  if (epoch >= r.arrived_epoch) {
    r.arrived_epoch = epoch;
    r.location = loc;
    r.in_transit = false;
    std::vector<Envelope> parked = std::move(r.buffered);
    r.buffered.clear();
    for (Envelope& env : parked) launch_envelope(std::move(env), loc);
  }
}

void Runtime::install_element(CollectionId col, ObjIndex idx,
                              std::unique_ptr<ArrayElementBase> obj, int pe,
                              std::uint32_t epoch, bool migrated) {
  Collection& c = collection(col);
  obj->col_ = col;
  obj->idx_ = idx;
  obj->pe_ = pe;
  ArrayElementBase* raw = obj.get();
  c.local(pe).elems[idx] = std::move(obj);

  if (migrated) raw->on_migrated();
  lb_->on_element_added(c, *raw);

  const int h = home_pe(idx);
  if (h == pe) {
    home_arrived(col, idx, pe, epoch);
  } else {
    send_control(h, 16, [this, col, idx, pe, epoch] { home_arrived(col, idx, pe, epoch); });
  }

  if (migrated) lb_->note_migration_arrival();
}

void Runtime::perform_migration(CollectionId col, ObjIndex idx, int to_pe) {
  Collection& c = collection(col);
  const int from = machine_.current_pe();
  ArrayElementBase* elem = c.find(from, idx);
  if (elem == nullptr || elem->pe_ != from)
    throw std::logic_error("perform_migration: element not on the executing PE");
  if (to_pe == from) return;

  lb_->on_element_removed(*elem);  // departure: the arrival gets a fresh slot
  elem->epoch_ += 1;
  const std::uint32_t epoch = elem->epoch_;

  // Extract the element from the local table.
  auto& m = c.local(from).elems;
  auto it = m.find(idx);
  std::unique_ptr<ArrayElementBase> obj = std::move(it->second);
  m.erase(it);

  std::size_t bytes;
  std::vector<std::byte> data;
  if (c.raw_move) {
    bytes = obj->migration_bytes();
    if (bytes == 0) {
      pup::Sizer s;
      obj->pup(s);
      bytes = s.size();
    }
  } else {
    pup::Packer pk(data);
    obj->pup(pk);
    bytes = data.size();
  }
  charge(bytes / cfg_.migrate_bw);  // pack / copy-out cost

  // Tell the home the element is in transit.
  const int h = home_pe(idx);
  if (h == from) {
    home_departed(col, idx, epoch);
  } else {
    send_control(h, 16, [this, col, idx, epoch] { home_departed(col, idx, epoch); });
  }

  const double unpack_cost = static_cast<double>(bytes) / cfg_.migrate_bw;
  if (c.raw_move) {
    // Live object handed over raw (AMPI user-level-thread stacks; DESIGN.md §1).
    auto holder = std::make_shared<std::unique_ptr<ArrayElementBase>>(std::move(obj));
    send_control(to_pe, bytes, [this, col, idx, to_pe, epoch, unpack_cost, holder] {
      charge(unpack_cost);
      install_element(col, idx, std::move(*holder), to_pe, epoch, /*migrated=*/true);
    });
  } else {
    obj.reset();  // destroyed on the source after packing
    const ChareTypeId type = c.type;
    auto payload = std::make_shared<std::vector<std::byte>>(std::move(data));
    send_control(to_pe, bytes, [this, col, idx, to_pe, epoch, type, unpack_cost, payload] {
      const ChareTypeInfo& info = Registry::instance().type(type);
      assert(info.create_default != nullptr &&
             "migratable chares must be default-constructible");
      std::unique_ptr<ArrayElementBase> fresh(info.create_default());
      pup::Unpacker u(*payload);
      fresh->pup(u);
      charge(unpack_cost);
      install_element(col, idx, std::move(fresh), to_pe, epoch, /*migrated=*/true);
    });
  }
}

void Runtime::migrate(CollectionId col, ObjIndex idx, int to_pe) {
  if (exec_elem_ != nullptr && exec_elem_->col_ == col && exec_elem_->idx_ == idx) {
    exec_migrate_to_ = to_pe;  // deferred to handler end
    return;
  }
  perform_migration(col, idx, to_pe);
}

void Runtime::destroy_local(CollectionId col, ObjIndex idx, int pe) {
  Collection& c = collection(col);
  PeLocal* hosting = c.local_if(pe);
  if (hosting == nullptr) return;
  auto& m = hosting->elems;
  auto it = m.find(idx);
  if (it == m.end()) return;
  lb_->on_element_removed(*it->second);
  m.erase(it);
  --c.total_elements;
  const int h = home_pe(idx);
  if (h == pe) {
    hosting->home.erase(idx);
  } else {
    send_control(h, 16, [this, col, idx, h] {
      // Erasing a missing record is a no-op, so probing stays equivalent.
      if (PeLocal* pl = collection(col).local_if(h)) pl->home.erase(idx);
    });
  }
}

void Runtime::rebuild_location_tables() {
  for (auto& cp : collections_) {
    Collection& c = *cp;
    if (c.is_group) continue;
    // Touched-only sweeps: an untouched block has nothing to clear and hosts
    // no elements, and re-homing writes one record per element regardless of
    // visit order, so the rebuilt tables are identical to a dense walk.
    c.pe.for_each_touched([](std::size_t, PeLocal& pl) {
      pl.home.clear();
      pl.loc_cache.clear();
    });
    c.pe.for_each_touched([this, &c](std::size_t p, PeLocal& pl) {
      for (auto& [ix, obj] : pl.elems) {
        HomeRecord& r = c.local(home_pe(ix)).home[ix];
        r.location = static_cast<int>(p);
        r.arrived_epoch = obj->epoch_;
        r.in_transit = false;
      }
    });
  }
}

}  // namespace charm
