
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features/test_ft.cpp" "tests/CMakeFiles/test_features.dir/features/test_ft.cpp.o" "gcc" "tests/CMakeFiles/test_features.dir/features/test_ft.cpp.o.d"
  "/root/repo/tests/features/test_lb.cpp" "tests/CMakeFiles/test_features.dir/features/test_lb.cpp.o" "gcc" "tests/CMakeFiles/test_features.dir/features/test_lb.cpp.o.d"
  "/root/repo/tests/features/test_power_tuning.cpp" "tests/CMakeFiles/test_features.dir/features/test_power_tuning.cpp.o" "gcc" "tests/CMakeFiles/test_features.dir/features/test_power_tuning.cpp.o.d"
  "/root/repo/tests/features/test_tram_malleability.cpp" "tests/CMakeFiles/test_features.dir/features/test_tram_malleability.cpp.o" "gcc" "tests/CMakeFiles/test_features.dir/features/test_tram_malleability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/charmlike.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
