file(REMOVE_RECURSE
  "CMakeFiles/fig16_cloud_stencil.dir/fig16_cloud_stencil.cpp.o"
  "CMakeFiles/fig16_cloud_stencil.dir/fig16_cloud_stencil.cpp.o.d"
  "fig16_cloud_stencil"
  "fig16_cloud_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cloud_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
